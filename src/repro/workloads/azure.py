"""Synthetic Azure-trace-shaped invocation traces.

The paper drives its functions with bursty invocation traces from the
Azure Functions dataset (Shahrad et al.): an initial burst of requests
that forces many cold starts (and plug events), followed by an abrupt
drop that leaves instances idling past the keep-alive window, triggering
scale-down (and unplug events).  The production traces are not
redistributable, so this module generates traces with the same structure
from a seeded piecewise-constant-rate Poisson process (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigError
from repro.sim.rng import make_rng
from repro.units import SEC
from repro.workloads.traces import InvocationTrace

__all__ = ["RatePhase", "AzureTraceGenerator", "bursty_trace", "diurnal_phases"]


@dataclass(frozen=True)
class RatePhase:
    """A constant-rate segment of a trace."""

    start_s: float
    end_s: float
    rps: float

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ConfigError(f"empty phase [{self.start_s}, {self.end_s})")
        if self.rps < 0:
            raise ConfigError(f"negative rate {self.rps}")


class AzureTraceGenerator:
    """Generates bursty traces from piecewise-constant Poisson rates."""

    def __init__(self, seed: int = 0):
        self.seed = seed

    def generate(
        self, function_name: str, phases: Sequence[RatePhase], stream: str = ""
    ) -> InvocationTrace:
        """Sample arrivals for the given rate phases.

        Deterministic for a fixed ``(seed, function_name, stream)``.
        """
        rng = make_rng(self.seed, f"azure/{function_name}/{stream}")
        arrivals_ns: List[int] = []
        for phase in phases:
            if phase.rps == 0:
                continue
            t = phase.start_s
            while True:
                t += rng.expovariate(phase.rps)
                if t >= phase.end_s:
                    break
                arrivals_ns.append(int(t * SEC))
        arrivals_ns.sort()
        return InvocationTrace(function_name, arrivals_ns)

    def bursty(
        self,
        function_name: str,
        duration_s: float = 300.0,
        burst_rps: float = 80.0,
        base_rps: float = 2.0,
        bursts: Sequence[Tuple[float, float]] = ((0.0, 4.0),),
        stream: str = "",
    ) -> InvocationTrace:
        """The paper's trace shape: burst(s) over a low background rate.

        ``bursts`` is a sequence of ``(start_s, end_s)`` windows during
        which the rate is ``burst_rps``; outside them it is ``base_rps``.
        """
        for start, end in bursts:
            if not 0 <= start < end <= duration_s:
                raise ConfigError(f"burst window ({start}, {end}) out of range")
        phases: List[RatePhase] = []
        cursor = 0.0
        for start, end in sorted(bursts):
            if start > cursor:
                phases.append(RatePhase(cursor, start, base_rps))
            phases.append(RatePhase(start, end, burst_rps))
            cursor = end
        if cursor < duration_s:
            phases.append(RatePhase(cursor, duration_s, base_rps))
        return self.generate(function_name, phases, stream=stream)

    def diurnal(
        self,
        function_name: str,
        duration_s: float,
        period_s: float,
        peak_rps: float,
        trough_rps: float,
        stream: str = "",
    ) -> InvocationTrace:
        """A day/night load cycle (see :func:`diurnal_phases`)."""
        return self.generate(
            function_name,
            diurnal_phases(duration_s, period_s, peak_rps, trough_rps),
            stream=stream,
        )


def diurnal_phases(
    duration_s: float,
    period_s: float,
    peak_rps: float,
    trough_rps: float,
    step_s: float = 10.0,
) -> List[RatePhase]:
    """Sinusoidal day/night rate pattern, discretized into steps.

    Production serverless load follows diurnal cycles (Shahrad et al.);
    this builds one as piecewise-constant phases so the standard
    generator can sample it.
    """
    import math

    if period_s <= 0 or step_s <= 0:
        raise ConfigError("period and step must be positive")
    if trough_rps < 0 or peak_rps < trough_rps:
        raise ConfigError("need peak_rps >= trough_rps >= 0")
    phases: List[RatePhase] = []
    mid = (peak_rps + trough_rps) / 2
    amplitude = (peak_rps - trough_rps) / 2
    t = 0.0
    while t < duration_s:
        end = min(t + step_s, duration_s)
        rate = mid + amplitude * math.sin(2 * math.pi * (t + step_s / 2) / period_s)
        phases.append(RatePhase(t, end, max(0.0, rate)))
        t = end
    return phases


def bursty_trace(
    function_name: str,
    seed: int = 0,
    duration_s: float = 300.0,
    burst_rps: float = 80.0,
    base_rps: float = 2.0,
    bursts: Sequence[Tuple[float, float]] = ((0.0, 4.0),),
) -> InvocationTrace:
    """Convenience wrapper over :class:`AzureTraceGenerator`."""
    return AzureTraceGenerator(seed).bursty(
        function_name,
        duration_s=duration_s,
        burst_rps=burst_rps,
        base_rps=base_rps,
        bursts=bursts,
    )
