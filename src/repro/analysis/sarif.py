"""SARIF 2.1.0 output for lint findings.

SARIF (Static Analysis Results Interchange Format, OASIS standard) is
the wire format GitHub code scanning ingests: uploading a SARIF log from
the CI lint job turns every finding into an inline annotation on the
pull request, at the exact line the rule flagged.  The renderer here
emits the minimal valid subset — ``version``, one ``run`` with a
``tool.driver`` (name, rules) and ``results`` carrying ``ruleId``,
``message.text``, a physical location with a 1-based region, and the
same content ``partialFingerprints`` the baseline machinery uses, so
code scanning tracks a finding across pushes exactly as the local
baseline does.

Determinism: rules are listed sorted by id, results in the drivers'
(path, line, col, rule) order; rendering the same findings twice is
byte-identical.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.analysis.baseline import fingerprint_errors
from repro.analysis.rules import DEFAULT_REGISTRY, LintError, RuleRegistry

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "render_sarif", "sarif_log"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: ``tool.driver.name`` in emitted logs.
_TOOL_NAME = "repro-lint"
_TOOL_INFO_URI = "https://example.invalid/repro/docs/analysis.md"


def _rule_descriptor(name: str, registry: RuleRegistry) -> Dict[str, object]:
    descriptor: Dict[str, object] = {"id": name}
    if name in registry:
        rule = registry.get(name)
        descriptor["shortDescription"] = {"text": rule.description}
        descriptor["properties"] = {"kind": rule.kind}
    else:  # synthetic rules (syntax-error) have no registry entry
        descriptor["shortDescription"] = {"text": name}
    return descriptor


def sarif_log(
    errors: Sequence[LintError],
    lines_by_path: Optional[Dict[str, Sequence[str]]] = None,
    registry: Optional[RuleRegistry] = None,
) -> Dict[str, object]:
    """The findings as a SARIF 2.1.0 log object (JSON-serialisable).

    ``lines_by_path`` (path → source lines) enables content
    fingerprints; without it results simply omit
    ``partialFingerprints``.
    """
    if registry is None:
        registry = DEFAULT_REGISTRY
    rule_ids = sorted({error.rule for error in errors})
    rule_index = {name: index for index, name in enumerate(rule_ids)}
    prints = (
        fingerprint_errors(errors, lines_by_path)
        if lines_by_path is not None
        else None
    )
    results: List[Dict[str, object]] = []
    for position, error in enumerate(errors):
        result: Dict[str, object] = {
            "ruleId": error.rule,
            "ruleIndex": rule_index[error.rule],
            "level": "error",
            "message": {"text": error.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": error.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": error.line,
                            # SARIF columns are 1-based; LintError's are
                            # the AST's 0-based offsets.
                            "startColumn": error.col + 1,
                        },
                    }
                }
            ],
        }
        if prints is not None:
            result["partialFingerprints"] = {
                "reproLint/v1": prints[position]
            }
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": _TOOL_INFO_URI,
                        "rules": [
                            _rule_descriptor(name, registry)
                            for name in rule_ids
                        ],
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(
    errors: Sequence[LintError],
    lines_by_path: Optional[Dict[str, Sequence[str]]] = None,
    registry: Optional[RuleRegistry] = None,
) -> str:
    """Findings as a SARIF 2.1.0 JSON string (byte-deterministic)."""
    return (
        json.dumps(
            sarif_log(errors, lines_by_path, registry=registry), indent=2
        )
        + "\n"
    )
