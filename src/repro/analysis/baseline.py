"""Accepted-findings baseline: grandfather old findings, gate new ones.

A lint rule added to a living repo faces a bootstrap problem: the day it
lands, every pre-existing violation would turn CI red at once.  The
baseline file solves it the way ``ruff``'s and ``ESLint``'s do — known
findings are recorded by a *content fingerprint* and subtracted from the
gate, so new violations fail CI while grandfathered ones do not, and
fixing a grandfathered finding never resurrects it.

Fingerprints are deliberately line-number-free: a finding is identified
by ``(rule, path, sha256(rule + path + stripped source line) [+ #n for
the n-th identical line])``.  Adding or removing unrelated lines above a
finding therefore does not invalidate the baseline, while editing the
offending line itself does — exactly the sensitivity a review gate
wants.  The same fingerprint is exported as SARIF
``partialFingerprints``, so GitHub code scanning tracks findings across
pushes identically.

File format (``tools/lint-baseline.json``)::

    {
      "version": 1,
      "findings": [
        {"rule": "...", "path": "...", "fingerprint": "..."},
        ...
      ]
    }

sorted by (rule, path, fingerprint) — regeneration via ``tools/lint.py
--update-baseline`` is byte-deterministic.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.analysis.rules import LintError

__all__ = [
    "BASELINE_VERSION",
    "BaselineKey",
    "fingerprint_errors",
    "load_baseline",
    "render_baseline",
    "split_baselined",
]

#: Schema version of the baseline file.
BASELINE_VERSION = 1

#: One accepted finding: (rule, path, fingerprint).
BaselineKey = Tuple[str, str, str]


def _normalize_path(path: str) -> str:
    """Forward-slash the path so baselines travel across platforms."""
    return path.replace("\\", "/")


def fingerprint_errors(
    errors: Sequence[LintError],
    lines_by_path: Dict[str, Sequence[str]],
) -> List[str]:
    """Content fingerprint for each error, positionally.

    The digest covers the rule, the normalized path and the *stripped
    text of the offending line* — not its number — so findings survive
    unrelated edits above them.  When several findings of one rule land
    on byte-identical lines of one file, an occurrence counter
    disambiguates them deterministically (in (line, col) order, which is
    how the drivers sort).
    """
    seen: Dict[str, int] = {}
    out: List[str] = []
    for error in errors:
        path = _normalize_path(error.path)
        lines = lines_by_path.get(error.path, ())
        text = ""
        if 1 <= error.line <= len(lines):
            text = lines[error.line - 1].strip()
        base = hashlib.sha256(
            f"{error.rule}\x00{path}\x00{text}".encode("utf-8")
        ).hexdigest()[:20]
        occurrence = seen.get(base, 0)
        seen[base] = occurrence + 1
        out.append(base if occurrence == 0 else f"{base}#{occurrence}")
    return out


def render_baseline(
    errors: Sequence[LintError],
    lines_by_path: Dict[str, Sequence[str]],
) -> str:
    """The baseline file recording ``errors`` as accepted, as a string.

    Output is sorted and newline-terminated: regenerating from the same
    findings is byte-identical.
    """
    prints = fingerprint_errors(errors, lines_by_path)
    records = sorted(
        {
            (error.rule, _normalize_path(error.path), fp)
            for error, fp in zip(errors, prints)
        }
    )
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {"rule": rule, "path": path, "fingerprint": fp}
            for rule, path, fp in records
        ],
    }
    return json.dumps(payload, indent=2) + "\n"


def load_baseline(path: Path) -> Set[BaselineKey]:
    """Accepted (rule, path, fingerprint) triples from a baseline file."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {version!r} "
            f"(expected {BASELINE_VERSION})"
        )
    keys: Set[BaselineKey] = set()
    for record in payload.get("findings", []):
        keys.add(
            (
                str(record["rule"]),
                _normalize_path(str(record["path"])),
                str(record["fingerprint"]),
            )
        )
    return keys


def split_baselined(
    errors: Sequence[LintError],
    accepted: Iterable[BaselineKey],
    lines_by_path: Dict[str, Sequence[str]],
) -> Tuple[List[LintError], List[LintError]]:
    """Partition findings into (new, grandfathered) against a baseline."""
    accepted_set = set(accepted)
    prints = fingerprint_errors(errors, lines_by_path)
    new: List[LintError] = []
    old: List[LintError] = []
    for error, fp in zip(errors, prints):
        key = (error.rule, _normalize_path(error.path), fp)
        (old if key in accepted_set else new).append(error)
    return new, old
