"""Named invariants over the simulated memory-management state.

Everything the paper measures rests on structural properties the state
plane must never silently break: page counts are conserved, HotMem
partitions serve exactly one instance, unplug only succeeds on empty
blocks, owner mirrors agree with per-block occupancy.  A bug in
``mm/zone.py`` or ``virtio/driver.py`` that corrupts page accounting
would not crash anything — it would just make every downstream figure
quietly wrong.

This module is the registry of those properties, in the spirit of
KASAN/lockdep: each :class:`Invariant` is a named, documented rule with a
checker that walks zones → blocks → page owners and reports structured
:class:`Failure` records.  The runtime sanitizer
(:mod:`repro.analysis.sanitizer`) sweeps the registry at checkpoints;
:meth:`~repro.mm.manager.GuestMemoryManager.check_consistency` delegates
here so tests and debugging sessions use the same rules.

Adding a rule
-------------
Decorate a generator taking a :class:`CheckContext` and yielding
:class:`Failure` records::

    @invariant("my-rule", "one-line contract the rule enforces")
    def _check_my_rule(ctx: CheckContext) -> Iterator[Failure]:
        for block in ctx.manager.blocks:
            if something_wrong(block):
                yield Failure("my-rule", "what and by how much", (block,))

Rules must be read-only and side-effect free: they may be re-run at any
checkpoint, against any manager, in any order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.errors import MemoryError_
from repro.mm.block import BlockState, MemoryBlock
from repro.mm.zone import ZoneType
from repro.units import PAGES_PER_BLOCK

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.provision import Fleet
    from repro.core.manager import HotMemManager
    from repro.mm.manager import GuestMemoryManager
    from repro.mm.owner import PageOwner

__all__ = [
    "CheckContext",
    "Failure",
    "Invariant",
    "InvariantViolation",
    "INVARIANTS",
    "invariant",
    "run_invariants",
    "check_now",
    "describe_block",
]

#: How many offending blocks a report dumps per failure before eliding.
_REPORT_BLOCK_LIMIT = 8


@dataclass
class CheckContext:
    """Everything a rule may inspect during one sweep.

    ``hotmem`` is optional: partition-level rules degrade to weaker
    structural checks (or skip) when the guest runs vanilla.  ``owner``
    is set only at ``teardown`` checkpoints and names the page owner
    that was just released.
    """

    manager: "GuestMemoryManager"
    hotmem: Optional["HotMemManager"] = None
    event: str = "manual"
    owner: Optional["PageOwner"] = None
    #: The fleet the checked VM belongs to, when provisioned through
    #: :class:`~repro.cluster.provision.Fleet` — enables host-level rules.
    fleet: Optional["Fleet"] = None


@dataclass(frozen=True)
class Failure:
    """One rule violation: which rule, what went wrong, which blocks."""

    rule: str
    message: str
    blocks: Tuple[MemoryBlock, ...] = ()


def describe_block(block: MemoryBlock) -> str:
    """One-line dump of a block's full accounting state (for reports)."""
    zone = block.zone.name if block.zone is not None else "-"
    owners = ", ".join(
        f"{owner.owner_id}={pages}"
        for owner, pages in sorted(
            block.owner_pages.items(), key=lambda item: item[0].owner_id
        )
    )
    return (
        f"block {block.index}: state={block.state.value} zone={zone} "
        f"isolated={'yes' if block.isolated else 'no'} "
        f"free={block.free_pages}/{PAGES_PER_BLOCK} owners={{{owners}}}"
    )


class InvariantViolation(MemoryError_):
    """One or more invariants failed during a sweep.

    Subclasses :class:`~repro.errors.MemoryError_` so callers that treat
    accounting corruption as a memory error keep working.  Carries the
    structured :attr:`failures` plus a rendered diff-style report listing
    every offending block's full state.
    """

    def __init__(self, failures: Iterable[Failure], event: str = "manual"):
        self.failures: List[Failure] = list(failures)
        self.event = event
        super().__init__(self.report())

    @property
    def rules(self) -> List[str]:
        """Sorted distinct rule names that fired."""
        return sorted({f.rule for f in self.failures})

    def report(self) -> str:
        """Human-readable multi-line report of every failure."""
        lines = [
            f"memory-state sanitizer: {len(self.failures)} invariant "
            f"violation(s) at checkpoint '{self.event}'"
        ]
        for failure in self.failures:
            lines.append(f"[{failure.rule}] {failure.message}")
            shown = failure.blocks[:_REPORT_BLOCK_LIMIT]
            for block in shown:
                lines.append(f"    - {describe_block(block)}")
            elided = len(failure.blocks) - len(shown)
            if elided > 0:
                lines.append(f"    - ... and {elided} more block(s)")
        return "\n".join(lines)


@dataclass(frozen=True)
class Invariant:
    """A named rule: description plus its checker function."""

    name: str
    description: str
    check: Callable[[CheckContext], Iterator[Failure]]


#: The rule registry, in registration order (name → rule).
INVARIANTS: Dict[str, Invariant] = {}


def invariant(name: str, description: str):
    """Register ``fn`` as the checker of invariant ``name``."""

    def decorate(fn: Callable[[CheckContext], Iterator[Failure]]):
        if name in INVARIANTS:
            raise ValueError(f"duplicate invariant {name!r}")
        INVARIANTS[name] = Invariant(name, description, fn)
        return fn

    return decorate


# ----------------------------------------------------------------------
# Rule registry
# ----------------------------------------------------------------------
@invariant(
    "page-conservation",
    "free + allocated pages equal the block/guest totals; absent blocks "
    "hold nothing",
)
def _check_page_conservation(ctx: CheckContext) -> Iterator[Failure]:
    manager = ctx.manager
    for block in manager.blocks:
        occupied = sum(block.owner_pages.values())
        if block.state is BlockState.ONLINE:
            if occupied + block.free_pages != PAGES_PER_BLOCK:
                yield Failure(
                    "page-conservation",
                    f"block {block.index}: occupied {occupied} + free "
                    f"{block.free_pages} != {PAGES_PER_BLOCK} "
                    f"(delta {occupied + block.free_pages - PAGES_PER_BLOCK:+d})",
                    (block,),
                )
        elif block.free_pages or block.owner_pages:
            yield Failure(
                "page-conservation",
                f"block {block.index} is {block.state.value} but still "
                f"accounts {block.free_pages} free and {occupied} owned pages",
                (block,),
            )
    online = sum(1 for b in manager.blocks if b.state is BlockState.ONLINE)
    visible_free = sum(zone.free_pages for zone in manager.zones.values())
    isolated_free = sum(b.free_pages for b in manager.blocks if b.isolated)
    allocated = sum(sum(b.owner_pages.values()) for b in manager.blocks)
    total = online * PAGES_PER_BLOCK
    if visible_free + isolated_free + allocated != total:
        yield Failure(
            "page-conservation",
            f"global ledger: visible free {visible_free} + isolated free "
            f"{isolated_free} + allocated {allocated} != "
            f"{total} pages of {online} online blocks "
            f"(delta {visible_free + isolated_free + allocated - total:+d})",
        )


@invariant(
    "zone-free-counter",
    "each zone's cached free counter equals the recomputed sum over its "
    "non-isolated blocks",
)
def _check_zone_free_counter(ctx: CheckContext) -> Iterator[Failure]:
    for zone in ctx.manager.zones.values():
        computed = sum(b.free_pages for b in zone.blocks if not b.isolated)
        if computed != zone.free_pages:
            yield Failure(
                "zone-free-counter",
                f"zone {zone.name}: cached free counter {zone.free_pages} != "
                f"{computed} recomputed from blocks "
                f"(delta {zone.free_pages - computed:+d})",
                tuple(zone.blocks),
            )


@invariant(
    "block-state-legality",
    "zone membership, block state and back-references follow the "
    "hot(un)plug state machine",
)
def _check_block_state_legality(ctx: CheckContext) -> Iterator[Failure]:
    manager = ctx.manager
    member_of: Dict[MemoryBlock, object] = {}
    for zone in manager.zones.values():
        for block in zone.blocks:
            if block in member_of:
                yield Failure(
                    "block-state-legality",
                    f"block {block.index} is a member of two zones "
                    f"({member_of[block].name} and {zone.name})",  # type: ignore[attr-defined]
                    (block,),
                )
            member_of[block] = zone
            if block.state is not BlockState.ONLINE:
                yield Failure(
                    "block-state-legality",
                    f"zone {zone.name} holds block {block.index} in state "
                    f"{block.state.value} (only ONLINE blocks may be zone "
                    f"members)",
                    (block,),
                )
            if block.zone is not zone:
                back = block.zone.name if block.zone is not None else None
                yield Failure(
                    "block-state-legality",
                    f"block {block.index} is a member of zone {zone.name} but "
                    f"its back-reference points at {back}",
                    (block,),
                )
    for block in manager.blocks:
        if block.state is BlockState.ONLINE:
            if block not in member_of:
                yield Failure(
                    "block-state-legality",
                    f"block {block.index} is online but belongs to no zone",
                    (block,),
                )
        else:
            if block.zone is not None:
                yield Failure(
                    "block-state-legality",
                    f"block {block.index} is {block.state.value} but still "
                    f"references zone {block.zone.name}",
                    (block,),
                )
            if block.isolated:
                yield Failure(
                    "block-state-legality",
                    f"block {block.index} is {block.state.value} but still "
                    f"flagged isolated",
                    (block,),
                )
    for block in manager.blocks[: manager.boot_blocks]:
        if block.state is not BlockState.ONLINE:
            yield Failure(
                "block-state-legality",
                f"boot block {block.index} is {block.state.value} "
                f"(boot memory can never be unplugged)",
                (block,),
            )


@invariant(
    "zone-movability",
    "MOVABLE and HOTMEM zones never hold pages of an unmovable owner",
)
def _check_zone_movability(ctx: CheckContext) -> Iterator[Failure]:
    for zone in ctx.manager.zones.values():
        if zone.ztype is ZoneType.NORMAL:
            continue
        for block in zone.blocks:
            for owner, pages in block.owner_pages.items():
                if not owner.movable:
                    yield Failure(
                        "zone-movability",
                        f"unmovable owner {owner.owner_id} holds {pages} "
                        f"pages in {zone.ztype.value} zone {zone.name} "
                        f"(block {block.index}); this would wedge offlining",
                        (block,),
                    )


@invariant(
    "owner-mirror-sync",
    "per-owner block mirrors agree with per-block occupancy in both "
    "directions",
)
def _check_owner_mirror_sync(ctx: CheckContext) -> Iterator[Failure]:
    owners = set()
    for block in ctx.manager.blocks:
        for owner, pages in block.owner_pages.items():
            owners.add(owner)
            if pages <= 0:
                yield Failure(
                    "owner-mirror-sync",
                    f"block {block.index} charges {owner.owner_id} a "
                    f"non-positive page count ({pages})",
                    (block,),
                )
            mirrored = owner.block_pages.get(block, 0)
            if mirrored != pages:
                yield Failure(
                    "owner-mirror-sync",
                    f"block {block.index} charges {owner.owner_id} {pages} "
                    f"pages but the owner mirror records {mirrored} "
                    f"(delta {mirrored - pages:+d})",
                    (block,),
                )
    for owner in owners:
        for block, pages in owner.block_pages.items():
            if block.owner_pages.get(owner, 0) != pages:
                yield Failure(
                    "owner-mirror-sync",
                    f"{owner.owner_id} mirrors {pages} pages in block "
                    f"{block.index} but the block charges "
                    f"{block.owner_pages.get(owner, 0)} (stale mirror entry)",
                    (block,),
                )


@invariant(
    "hotmem-exclusivity",
    "a private HotMem partition only holds pages of the instance it is "
    "assigned to; the shared partition never holds private anonymous pages",
)
def _check_hotmem_exclusivity(ctx: CheckContext) -> Iterator[Failure]:
    from repro.mm.mm_struct import MmStruct  # local: avoid import cycle

    if ctx.hotmem is not None:
        for partition in ctx.hotmem.partitions:
            for block in partition.zone.blocks:
                for owner, pages in block.owner_pages.items():
                    if getattr(owner, "hotmem_partition", None) is not partition:
                        yield Failure(
                            "hotmem-exclusivity",
                            f"partition {partition.partition_id} "
                            f"(zone {partition.zone.name}) holds {pages} "
                            f"pages of foreign owner {owner.owner_id} in "
                            f"block {block.index}",
                            (block,),
                        )
        shared = ctx.hotmem.shared_partition
        if shared is not None:
            for block in shared.zone.blocks:
                for owner, pages in block.owner_pages.items():
                    if isinstance(owner, MmStruct):
                        yield Failure(
                            "hotmem-exclusivity",
                            f"shared partition holds {pages} private "
                            f"anonymous pages of {owner.owner_id} in block "
                            f"{block.index} (only the page cache may "
                            f"allocate there)",
                            (block,),
                        )
        return
    # Vanilla-context fallback: any HOTMEM zone that appears (e.g. a
    # manually registered partition zone) must only hold owners linked to
    # a partition backed by that very zone.
    for zone in ctx.manager.zones.values():
        if zone.ztype is not ZoneType.HOTMEM:
            continue
        for block in zone.blocks:
            for owner, pages in block.owner_pages.items():
                partition = getattr(owner, "hotmem_partition", None)
                if partition is not None and partition.zone is not zone:
                    yield Failure(
                        "hotmem-exclusivity",
                        f"{owner.owner_id} (assigned to partition "
                        f"{partition.partition_id}) holds {pages} pages in "
                        f"unrelated HotMem zone {zone.name} "
                        f"(block {block.index})",
                        (block,),
                    )


@invariant(
    "footprint-confinement",
    "an instance attached to a partition keeps its entire anonymous "
    "footprint inside that partition (no cross-block interleaving outside "
    "the shared partition)",
)
def _check_footprint_confinement(ctx: CheckContext) -> Iterator[Failure]:
    seen = set()
    for block in ctx.manager.blocks:
        for owner in block.owner_pages:
            if owner in seen:
                continue
            seen.add(owner)
            partition = getattr(owner, "hotmem_partition", None)
            if partition is None:
                continue
            for held_block, pages in owner.block_pages.items():
                if held_block.zone is not partition.zone:
                    where = (
                        held_block.zone.name
                        if held_block.zone is not None
                        else "no zone"
                    )
                    yield Failure(
                        "footprint-confinement",
                        f"{owner.owner_id} is confined to partition "
                        f"{partition.partition_id} but holds {pages} pages "
                        f"in block {held_block.index} ({where})",
                        (held_block,),
                    )


@invariant(
    "partition-refcount",
    "partition_users, assignment and population agree; a partition whose "
    "last user exited holds no live data",
)
def _check_partition_refcount(ctx: CheckContext) -> Iterator[Failure]:
    if ctx.hotmem is None:
        return
    for partition in ctx.hotmem.partitions:
        if partition.partition_users < 0:
            yield Failure(
                "partition-refcount",
                f"partition {partition.partition_id} has negative refcount "
                f"{partition.partition_users}",
            )
        if partition.populated_blocks > partition.size_blocks:
            yield Failure(
                "partition-refcount",
                f"partition {partition.partition_id} is over-populated: "
                f"{partition.populated_blocks} blocks for a size of "
                f"{partition.size_blocks}",
                tuple(partition.zone.blocks),
            )
        if (partition.partition_users > 0) != (partition.assigned_to is not None):
            yield Failure(
                "partition-refcount",
                f"partition {partition.partition_id}: refcount "
                f"{partition.partition_users} disagrees with assigned_to="
                f"{partition.assigned_to!r}",
            )
        # True occupancy from the blocks: Zone.occupied_pages counts
        # isolated-but-free pages (hidden from the allocator counter) as
        # occupied, which is exactly the transient state of an empty
        # partition mid-unplug — not a leak.
        occupied = sum(b.occupied_pages for b in partition.zone.blocks)
        if partition.partition_users == 0 and occupied:
            yield Failure(
                "partition-refcount",
                f"partition {partition.partition_id} has no users but "
                f"{occupied} occupied pages (leaked on instance teardown)",
                tuple(partition.zone.blocks),
            )
    shared = ctx.hotmem.shared_partition
    if shared is not None and (
        shared.partition_users != 0 or shared.assigned_to is not None
    ):
        yield Failure(
            "partition-refcount",
            f"shared partition must never be assigned: users="
            f"{shared.partition_users} assigned_to={shared.assigned_to!r}",
        )


@invariant(
    "quarantine-isolation",
    "quarantined blocks stay online but isolated (never allocatable, never "
    "double-counted as free); quarantined partitions are never assigned",
)
def _check_quarantine_isolation(ctx: CheckContext) -> Iterator[Failure]:
    manager = ctx.manager
    quarantined = set(manager.quarantined_blocks)
    for block in quarantined:
        if block.state is not BlockState.ONLINE:
            yield Failure(
                "quarantine-isolation",
                f"quarantined block {block.index} is {block.state.value} "
                f"(quarantine must keep the block online until released)",
                (block,),
            )
            continue
        if not block.isolated:
            yield Failure(
                "quarantine-isolation",
                f"quarantined block {block.index} is not isolated: its "
                f"{block.free_pages} free pages are visible to the allocator "
                f"(allocatable and double-counted as free)",
                (block,),
            )
    if ctx.hotmem is None:
        return
    for partition in ctx.hotmem.partitions:
        if not partition.quarantined:
            # A partition holding a quarantined block must itself be
            # quarantined, or the attach path could hand it out again.
            poisoned = tuple(
                b for b in partition.zone.blocks if b in quarantined
            )
            if poisoned:
                yield Failure(
                    "quarantine-isolation",
                    f"partition {partition.partition_id} holds quarantined "
                    f"block(s) {[b.index for b in poisoned]} but is not "
                    f"quarantined itself",
                    poisoned,
                )
            continue
        if partition.partition_users > 0 or partition.assigned_to is not None:
            yield Failure(
                "quarantine-isolation",
                f"quarantined partition {partition.partition_id} is still "
                f"assigned: users={partition.partition_users} "
                f"assigned_to={partition.assigned_to!r}",
                tuple(partition.zone.blocks),
            )


@invariant(
    "teardown-no-leak",
    "a released owner holds no pages anywhere (double-free and leak "
    "detection on instance teardown)",
)
def _check_teardown_no_leak(ctx: CheckContext) -> Iterator[Failure]:
    owner = ctx.owner
    if owner is None:
        return
    if owner.block_pages:
        total = sum(owner.block_pages.values())
        yield Failure(
            "teardown-no-leak",
            f"released owner {owner.owner_id} still mirrors {total} pages "
            f"across {len(owner.block_pages)} block(s)",
            tuple(owner.block_pages),
        )
    leaked = tuple(
        block for block in ctx.manager.blocks if owner in block.owner_pages
    )
    if leaked:
        yield Failure(
            "teardown-no-leak",
            f"{len(leaked)} block(s) still charge released owner "
            f"{owner.owner_id}",
            leaked,
        )


@invariant(
    "host-conservation",
    "per NUMA node, the resident VMs' attributed backing bytes sum exactly "
    "to the node's used bytes (no leaked or double-counted host memory)",
)
def _check_host_conservation(ctx: CheckContext) -> Iterator[Failure]:
    fleet = ctx.fleet
    if fleet is None:
        return
    for host_index, node, residents in fleet.node_views():
        backed = sum(vm.backed_bytes for vm in residents)
        # Non-VM charges (injected pressure spikes) are attributed to the
        # fleet's external accounts; conservation covers them too.
        backed += fleet.external_bytes(host_index, node.node_id)
        if backed != node.used_bytes:
            names = ", ".join(vm.name for vm in residents) or "<none>"
            yield Failure(
                "host-conservation",
                f"host {host_index} node {node.node_id}: resident VMs "
                f"({names}) back {backed} bytes but the node accounts "
                f"{node.used_bytes} used (delta {backed - node.used_bytes:+d})",
            )


@invariant(
    "ledger-conservation",
    "the density arbiter's per-node committed/resident ledger equals the "
    "ground truth recomputed from alive VMs (zero drift after any fault "
    "storm)",
)
def _check_ledger_conservation(ctx: CheckContext) -> Iterator[Failure]:
    fleet = ctx.fleet
    if fleet is None:
        return
    for (host_index, node_id), delta in sorted(
        fleet.ledger_drift_report().items()
    ):
        yield Failure(
            "ledger-conservation",
            f"host {host_index} node {node_id}: arbiter ledger drifts "
            f"{delta:+d} bytes from the committed sum of alive VMs",
        )


# ----------------------------------------------------------------------
# Sweeping
# ----------------------------------------------------------------------
def run_invariants(
    ctx: CheckContext, rules: Optional[Iterable[str]] = None
) -> List[Failure]:
    """Run ``rules`` (default: all registered) and collect every failure."""
    if rules is None:
        selected = list(INVARIANTS.values())
    else:
        unknown = sorted(set(rules) - set(INVARIANTS))
        if unknown:
            raise ValueError(f"unknown invariant rule(s): {', '.join(unknown)}")
        selected = [INVARIANTS[name] for name in rules]
    failures: List[Failure] = []
    for rule in selected:
        failures.extend(rule.check(ctx))
    return failures


def check_now(
    manager: "GuestMemoryManager",
    hotmem: Optional["HotMemManager"] = None,
    event: str = "manual",
    owner: Optional["PageOwner"] = None,
    rules: Optional[Iterable[str]] = None,
    fleet: Optional["Fleet"] = None,
) -> None:
    """One-shot sweep; raises :class:`InvariantViolation` on any failure.

    ``fleet`` defaults to the manager's ``_fleet_context`` (set by
    :class:`~repro.cluster.provision.Fleet` at provisioning), so callers
    never need to thread it through by hand.
    """
    if fleet is None:
        fleet = getattr(manager, "_fleet_context", None)
    ctx = CheckContext(
        manager=manager, hotmem=hotmem, event=event, owner=owner, fleet=fleet
    )
    failures = run_invariants(ctx, rules)
    if failures:
        raise InvariantViolation(failures, event)
