"""Pluggable lint-rule framework: one walker pass, one error model.

Historically every lint rule lived as a hardcoded function inside
:mod:`repro.analysis.lint` and re-walked the AST for itself.  This
module factors the machinery out so that plain AST rules and the
CFG/dataflow rules in :mod:`repro.analysis.flow` plug into the same
driver:

* :class:`LintError` — the one finding model (shared by text, JSON and
  SARIF output, suppression and baselines);
* :class:`FileContext` — one parsed file: the AST is parsed once and
  walked once (``ctx.nodes``), function CFGs are built lazily and
  cached (``ctx.cfg``), suppression comments are collected once;
* :class:`RuleRegistry` — ordered name → :class:`Rule` mapping with a
  decorator for registration.  ``kind`` distinguishes syntactic AST
  rules from flow (CFG/dataflow) rules, purely for documentation and
  selective runs; both receive the same :class:`FileContext`.

Suppression uses the one historical syntax for every rule kind::

    risky_line()  # lint: allow[rule-name, other-rule] rationale

"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set

from repro.analysis import cfg as cfg_mod

__all__ = [
    "DEFAULT_REGISTRY",
    "FileContext",
    "LintError",
    "Rule",
    "RuleRegistry",
    "suppressed_rules",
]


@dataclass(frozen=True)
class LintError:
    """One finding: precise location plus rule name and message."""

    path: str
    line: int
    col: int
    rule: str
    message: str


_SUPPRESS_RE = re.compile(r"#\s*lint:\s*allow\[([a-z0-9_,\s-]+)\]")


def suppressed_rules(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """line number (1-based) → rule names allowed on that line."""
    allowed: Dict[int, Set[str]] = {}
    for number, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            names = {name.strip() for name in match.group(1).split(",")}
            allowed[number] = {name for name in names if name}
    return allowed


class FileContext:
    """One parsed source file, shared by every rule in a lint run.

    Parsing and the full ``ast.walk`` happen exactly once per file;
    rules iterate :attr:`nodes` instead of re-walking, and flow rules
    get per-function CFGs through :meth:`cfg` (built on first use and
    cached).  Raises :class:`SyntaxError` if the source does not parse;
    the driver turns that into a ``syntax-error`` finding.
    """

    def __init__(self, source: str, path: str, module: str):
        self.source = source
        self.path = path
        self.module = module
        self.tree: ast.Module = ast.parse(source, filename=path)
        self.lines: List[str] = source.splitlines()
        self.suppressed: Dict[int, Set[str]] = suppressed_rules(self.lines)
        self._nodes: Optional[List[ast.AST]] = None
        self._functions: Optional[List[cfg_mod.FunctionInfo]] = None
        self._cfgs: Dict[int, cfg_mod.CFG] = {}

    @property
    def nodes(self) -> List[ast.AST]:
        """Every AST node, from a single cached walk of the module."""
        if self._nodes is None:
            self._nodes = list(ast.walk(self.tree))
        return self._nodes

    @property
    def functions(self) -> List[cfg_mod.FunctionInfo]:
        """Every function definition in the module (with qualnames)."""
        if self._functions is None:
            self._functions = list(cfg_mod.iter_functions(self.tree))
        return self._functions

    def cfg(self, info: cfg_mod.FunctionInfo) -> cfg_mod.CFG:
        """The (cached) control-flow graph of one function."""
        key = id(info.node)
        graph = self._cfgs.get(key)
        if graph is None:
            graph = cfg_mod.build_cfg(info.node, info.qualname)
            self._cfgs[key] = graph
        return graph


RuleCheck = Callable[[FileContext], Iterator[LintError]]


@dataclass(frozen=True)
class Rule:
    """A registered rule: metadata plus its check function."""

    name: str
    description: str
    kind: str  # "ast" | "flow"
    check: RuleCheck


class RuleRegistry:
    """Ordered, name-unique collection of lint rules."""

    def __init__(self) -> None:
        self._rules: Dict[str, Rule] = {}

    def register(self, rule: Rule) -> Rule:
        if rule.name in self._rules:
            raise ValueError(f"duplicate lint rule {rule.name!r}")
        if rule.kind not in ("ast", "flow"):
            raise ValueError(f"unknown rule kind {rule.kind!r}")
        self._rules[rule.name] = rule
        return rule

    def rule(
        self, name: str, description: str, kind: str = "ast"
    ) -> Callable[[RuleCheck], RuleCheck]:
        """Decorator: register ``check`` under ``name``."""

        def decorate(check: RuleCheck) -> RuleCheck:
            self.register(Rule(name, description, kind, check))
            return check

        return decorate

    def get(self, name: str) -> Rule:
        return self._rules[name]

    def names(self) -> List[str]:
        return list(self._rules)

    def descriptions(self) -> Dict[str, str]:
        return {rule.name: rule.description for rule in self}

    def by_kind(self, kind: str) -> List[Rule]:
        return [rule for rule in self if rule.kind == kind]

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules.values())

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, name: object) -> bool:
        return name in self._rules


#: The registry the repo-wide lint drivers run.  `repro.analysis.lint`
#: registers the syntactic rules, `repro.analysis.flow` the CFG rules.
DEFAULT_REGISTRY = RuleRegistry()
