"""Runtime memory-state sanitizer.

:class:`MemSanitizer` attaches to one
:class:`~repro.mm.manager.GuestMemoryManager` and sweeps the invariant
registry (:mod:`repro.analysis.invariants`) at configurable checkpoints:

* **on plug/unplug** — immediately after ``online_block`` and
  ``offline_and_remove``, the transitions that rewire zone membership;
* **on instance teardown** — after ``free_all``, additionally running the
  ``teardown-no-leak`` rule against the released owner;
* **periodically** — every *N* memory-manager mutations
  (``alloc_pages``/``free_pages``/``migrate_block_out``), and optionally
  every *N* simulator events via :meth:`MemSanitizer.bind_sim`.

Attachment wraps the manager's mutating methods on the *instance* (the
class stays untouched), so detaching restores the original behaviour
exactly.  Checks only fire at method boundaries, where the state plane is
by contract consistent; a failed sweep raises
:class:`~repro.analysis.invariants.InvariantViolation` at the exact
operation that corrupted the state — the KASAN property: the report
points at the culprit, not at the figure that later looks wrong.

The module-level :func:`install` hooks construction of every future
``GuestMemoryManager`` (and wires ``HotMemManager`` context when one is
built on top), which is how ``python -m repro.experiments --sanitize``
and ``pytest --sanitize`` cover whole experiment runs without threading a
sanitizer through every call site.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, FrozenSet, List, Optional

from repro.analysis.invariants import (
    CheckContext,
    InvariantViolation,
    run_invariants,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.manager import HotMemManager
    from repro.mm.manager import GuestMemoryManager
    from repro.mm.owner import PageOwner
    from repro.sim.engine import Simulator

__all__ = [
    "SanitizerConfig",
    "MemSanitizer",
    "install",
    "uninstall",
    "is_installed",
    "installed_sanitizers",
    "sanitized",
]

#: Manager methods whose completion counts as one mm event (periodic tick).
_TICK_METHODS = ("alloc_pages", "free_pages", "migrate_block_out")


@dataclass(frozen=True)
class SanitizerConfig:
    """Checkpoint policy for one sanitizer.

    ``every_n_events=0`` disables periodic sweeps (hotplug/teardown
    checkpoints still fire); ``rules=None`` runs the whole registry.
    """

    #: Memory-manager mutations between periodic sweeps (0 = disabled).
    every_n_events: int = 256
    #: Sweep immediately after every ``online_block``/``offline_and_remove``.
    on_hotplug: bool = True
    #: Sweep (including leak detection) after every ``free_all``.
    on_teardown: bool = True
    #: Simulator events between periodic sweeps when bound via
    #: :meth:`MemSanitizer.bind_sim` (0 = disabled).
    every_n_sim_events: int = 0
    #: Restrict sweeps to these rule names (None = all registered rules).
    rules: Optional[FrozenSet[str]] = None

    @classmethod
    def from_env(cls) -> "SanitizerConfig":
        """Build a config honouring ``REPRO_SANITIZE_EVERY`` when set."""
        every = os.environ.get("REPRO_SANITIZE_EVERY")
        if every is None:
            return cls()
        return cls(every_n_events=int(every))


class MemSanitizer:
    """Invariant sweeper bound to one guest memory manager."""

    def __init__(
        self,
        manager: "GuestMemoryManager",
        hotmem: Optional["HotMemManager"] = None,
        config: Optional[SanitizerConfig] = None,
    ):
        self.manager = manager
        self.hotmem = hotmem
        self.config = config or SanitizerConfig()
        #: Completed sweeps (a cheap health signal for tests/CLI output).
        self.checks_run = 0
        self._mm_events = 0
        self._sim_events = 0
        self._attached = False
        #: (method name, our wrapper) per instrumented checkpoint.
        self._wrapped: List[tuple] = []
        self._bound_sim: Optional["Simulator"] = None

    # ------------------------------------------------------------------
    # Sweeping
    # ------------------------------------------------------------------
    def check(self, event: str = "manual", owner: Optional["PageOwner"] = None):
        """Sweep now; raises :class:`InvariantViolation` on any failure."""
        hotmem = self.hotmem
        if hotmem is None:
            # A HotMemManager built on this manager advertises itself so
            # partition rules apply even when the sanitizer was attached
            # before (or without knowledge of) the HotMem layer.
            hotmem = getattr(self.manager, "_hotmem_context", None)
        # Fleet-provisioned VMs advertise their fleet the same way, so
        # host-level conservation is swept at every checkpoint too.
        fleet = getattr(self.manager, "_fleet_context", None)
        ctx = CheckContext(
            manager=self.manager,
            hotmem=hotmem,
            event=event,
            owner=owner,
            fleet=fleet,
        )
        failures = run_invariants(ctx, self.config.rules)
        self.checks_run += 1
        if failures:
            raise InvariantViolation(failures, event)

    def _tick(self) -> None:
        if self.config.every_n_events <= 0:
            return
        self._mm_events += 1
        if self._mm_events >= self.config.every_n_events:
            self._mm_events = 0
            self.check("periodic")

    def _sim_tick(self) -> None:
        if self.config.every_n_sim_events <= 0:
            return
        self._sim_events += 1
        if self._sim_events >= self.config.every_n_sim_events:
            self._sim_events = 0
            self.check("periodic")

    # ------------------------------------------------------------------
    # Checkpoint wiring
    # ------------------------------------------------------------------
    def attach(self) -> "MemSanitizer":
        """Instrument the manager's mutating methods with checkpoints."""
        if self._attached:
            return self
        manager = self.manager
        #: Discovery hook: a later ``HotMemManager`` built on this manager
        #: (or the global installer) finds its sanitizer through this.
        manager._sanitizer = self  # type: ignore[attr-defined]

        def wrap(name: str, after: Callable[[tuple, dict, Any], None]) -> None:
            original = getattr(manager, name)

            def wrapped(*args: Any, **kwargs: Any) -> Any:
                # Dispatch through __wrapped__ (not the closure) so that
                # detaching a sanitizer below us in a stack can splice
                # itself out by rebinding this attribute.
                result = wrapped.__wrapped__(*args, **kwargs)  # type: ignore[attr-defined]
                after(args, kwargs, result)
                return result

            wrapped.__name__ = name
            wrapped.__wrapped__ = original  # type: ignore[attr-defined]
            setattr(manager, name, wrapped)
            self._wrapped.append((name, wrapped))

        if self.config.on_hotplug:
            wrap("online_block", lambda a, k, r: self.check("plug"))
            wrap("offline_and_remove", lambda a, k, r: self.check("unplug"))
            # Quarantine transitions rewire isolation and allocator
            # visibility the same way plug/unplug do.
            wrap("quarantine_block", lambda a, k, r: self.check("quarantine"))
            wrap(
                "release_quarantine",
                lambda a, k, r: self.check("quarantine-release"),
            )
        if self.config.on_teardown:
            wrap(
                "free_all",
                lambda a, k, r: self.check(
                    "teardown", owner=a[0] if a else k["owner"]
                ),
            )
        for name in _TICK_METHODS:
            wrap(name, lambda a, k, r: self._tick())
        self._attached = True
        return self

    def detach(self) -> None:
        """Remove this sanitizer's instrumentation only.

        Wrappers live as instance attributes shadowing the class methods.
        Sanitizers may be stacked on one manager (a manual one over the
        global ``--sanitize`` install), so detaching splices exactly our
        wrapper out of the chain, in any detach order.
        """
        for name, wrapper in self._wrapped:
            original = wrapper.__wrapped__  # type: ignore[attr-defined]
            current = vars(self.manager).get(name)
            if current is wrapper:
                # Restoring the class's own (pristine) method means
                # deleting the shadow; anything else — e.g. another
                # sanitizer's wrapper below us — goes back as the shadow.
                if getattr(original, "__func__", None) is getattr(
                    type(self.manager), name, None
                ):
                    delattr(self.manager, name)
                else:
                    setattr(self.manager, name, original)
                continue
            # Another wrapper was stacked on top of ours: find the one
            # dispatching to us and rebind it to our original.
            node = current
            while (
                node is not None
                and getattr(node, "__wrapped__", None) is not wrapper
            ):
                node = getattr(node, "__wrapped__", None)
            if node is not None:
                node.__wrapped__ = original  # type: ignore[attr-defined]
        self._wrapped.clear()
        if getattr(self.manager, "_sanitizer", None) is self:
            delattr(self.manager, "_sanitizer")
        if self._bound_sim is not None:
            self._bound_sim.remove_probe(self._sim_tick)
            self._bound_sim = None
        self._attached = False

    def bind_sim(self, sim: "Simulator", every_n_sim_events: int = 0) -> None:
        """Also sweep every N executed simulator events.

        ``every_n_sim_events`` overrides the config value when positive.
        """
        if self._bound_sim is not None:
            raise RuntimeError("sanitizer is already bound to a simulator")
        if every_n_sim_events > 0:
            self.config = SanitizerConfig(
                every_n_events=self.config.every_n_events,
                on_hotplug=self.config.on_hotplug,
                on_teardown=self.config.on_teardown,
                every_n_sim_events=every_n_sim_events,
                rules=self.config.rules,
            )
        sim.add_probe(self._sim_tick)
        self._bound_sim = sim

    def __repr__(self) -> str:
        state = "attached" if self._attached else "detached"
        return f"<MemSanitizer {state} checks={self.checks_run}>"


# ----------------------------------------------------------------------
# Global installation (the --sanitize machinery)
# ----------------------------------------------------------------------
class _GlobalInstall:
    """Bookkeeping for one global installation."""

    def __init__(self, config: SanitizerConfig):
        self.config = config
        self.sanitizers: List[MemSanitizer] = []
        self.originals: Dict[str, Callable] = {}


_installed: Optional[_GlobalInstall] = None


def is_installed() -> bool:
    """Whether the global construction hooks are active."""
    return _installed is not None


def installed_sanitizers() -> List[MemSanitizer]:
    """Sanitizers created by the active global installation (oldest first)."""
    return list(_installed.sanitizers) if _installed is not None else []


def install(config: Optional[SanitizerConfig] = None) -> _GlobalInstall:
    """Attach a sanitizer to every guest memory manager built from now on.

    Patches ``GuestMemoryManager.__init__`` to attach a fresh sanitizer to
    every manager built from now on (a ``HotMemManager`` built on top is
    picked up automatically through its ``_hotmem_context`` hook).  Raises
    if already installed — nesting two policies would make it ambiguous
    which config a violation was found under.
    """
    global _installed
    if _installed is not None:
        raise RuntimeError("memory-state sanitizer is already installed")
    from repro.mm.manager import GuestMemoryManager

    state = _GlobalInstall(config or SanitizerConfig.from_env())
    orig_mm_init = GuestMemoryManager.__init__

    def mm_init(self: "GuestMemoryManager", *args: Any, **kwargs: Any) -> None:
        orig_mm_init(self, *args, **kwargs)
        sanitizer = MemSanitizer(self, config=state.config).attach()
        state.sanitizers.append(sanitizer)
        sanitizer.check("boot")

    GuestMemoryManager.__init__ = mm_init  # type: ignore[method-assign]
    state.originals = {"mm": orig_mm_init}
    _installed = state
    return state


def uninstall() -> Optional[SanitizerConfig]:
    """Undo :func:`install`; returns the removed config (None if inactive)."""
    global _installed
    if _installed is None:
        return None
    from repro.mm.manager import GuestMemoryManager

    GuestMemoryManager.__init__ = _installed.originals["mm"]  # type: ignore[method-assign]
    for sanitizer in _installed.sanitizers:
        sanitizer.detach()
    config = _installed.config
    _installed = None
    return config


@contextmanager
def sanitized(config: Optional[SanitizerConfig] = None):
    """Context manager: globally install for the duration of a block."""
    state = install(config)
    try:
        yield state
    finally:
        uninstall()
