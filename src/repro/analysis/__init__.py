"""Correctness tooling: the memory-state sanitizer and the repo lint.

Two prongs, both described in ``docs/analysis.md``:

* :mod:`repro.analysis.invariants` + :mod:`repro.analysis.sanitizer` — a
  KASAN/lockdep-style runtime checker that sweeps a registry of named
  structural invariants over the simulated mm (page conservation, zone
  movability, HotMem exclusivity, refcounts, mirrors, leak detection) at
  configurable checkpoints; enabled fleet-wide with
  ``python -m repro.experiments ... --sanitize`` or ``pytest --sanitize``.
* :mod:`repro.analysis.lint` — an AST lint pass enforcing repo-wide
  determinism and encapsulation conventions, run as
  ``python tools/lint.py src``.
"""

from repro.analysis.invariants import (
    INVARIANTS,
    CheckContext,
    Failure,
    Invariant,
    InvariantViolation,
    check_now,
    invariant,
    run_invariants,
)
from repro.analysis.lint import LintError, lint_paths, lint_source
from repro.analysis.sanitizer import (
    MemSanitizer,
    SanitizerConfig,
    install,
    installed_sanitizers,
    is_installed,
    sanitized,
    uninstall,
)

__all__ = [
    "CheckContext",
    "Failure",
    "Invariant",
    "InvariantViolation",
    "INVARIANTS",
    "invariant",
    "run_invariants",
    "check_now",
    "MemSanitizer",
    "SanitizerConfig",
    "install",
    "uninstall",
    "is_installed",
    "installed_sanitizers",
    "sanitized",
    "LintError",
    "lint_source",
    "lint_paths",
]
