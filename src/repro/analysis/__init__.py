"""Correctness tooling: runtime sanitizer, static lint, flow analysis.

Three prongs, all described in ``docs/analysis.md``:

* :mod:`repro.analysis.invariants` + :mod:`repro.analysis.sanitizer` — a
  KASAN/lockdep-style runtime checker that sweeps a registry of named
  structural invariants over the simulated mm (page conservation, zone
  movability, HotMem exclusivity, refcounts, mirrors, leak detection) at
  configurable checkpoints; enabled fleet-wide with
  ``python -m repro.experiments ... --sanitize`` or ``pytest --sanitize``.
* :mod:`repro.analysis.lint` + :mod:`repro.analysis.rules` — a pluggable
  lint-rule registry: syntactic AST rules and CFG/dataflow rules share
  one walker pass, one suppression syntax and one finding model, run as
  ``python tools/lint.py src`` (JSON and SARIF 2.1.0 output, baseline
  support).
* :mod:`repro.analysis.cfg` + :mod:`repro.analysis.flow` — per-function
  control-flow graphs with yield-point nodes over the simulator's
  cooperative coroutines, powering the race-detection rule families
  (stale-guard-across-yield, unchecked-result, span-hygiene): properties
  runtime probes can only sample per-seed are proven over *all*
  interleavings.
"""

from repro.analysis.baseline import (
    fingerprint_errors,
    load_baseline,
    render_baseline,
    split_baselined,
)
from repro.analysis.cfg import CFG, CFGNode, build_all, build_cfg
from repro.analysis.invariants import (
    INVARIANTS,
    CheckContext,
    Failure,
    Invariant,
    InvariantViolation,
    check_now,
    invariant,
    run_invariants,
)
from repro.analysis.lint import RULES, LintError, lint_paths, lint_source
from repro.analysis.rules import (
    DEFAULT_REGISTRY,
    FileContext,
    Rule,
    RuleRegistry,
)
from repro.analysis.sanitizer import (
    MemSanitizer,
    SanitizerConfig,
    install,
    installed_sanitizers,
    is_installed,
    sanitized,
    uninstall,
)
from repro.analysis.sarif import render_sarif

__all__ = [
    "CheckContext",
    "Failure",
    "Invariant",
    "InvariantViolation",
    "INVARIANTS",
    "invariant",
    "run_invariants",
    "check_now",
    "MemSanitizer",
    "SanitizerConfig",
    "install",
    "uninstall",
    "is_installed",
    "installed_sanitizers",
    "sanitized",
    "LintError",
    "RULES",
    "lint_source",
    "lint_paths",
    "DEFAULT_REGISTRY",
    "FileContext",
    "Rule",
    "RuleRegistry",
    "CFG",
    "CFGNode",
    "build_cfg",
    "build_all",
    "render_sarif",
    "fingerprint_errors",
    "load_baseline",
    "render_baseline",
    "split_baselined",
]
