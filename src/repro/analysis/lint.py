"""Repository lint: determinism, encapsulation and flow rules.

The simulator's claim to reproducibility is structural: all randomness
flows through seeded streams (:mod:`repro.sim.rng`), all time comes from
the engine clock, and mm accounting structures are only mutated by their
owning modules.  Nothing in Python enforces any of that — one stray
``random.random()`` in an experiment silently makes a figure
unreproducible.  This module registers the *syntactic* rules on the
shared :data:`~repro.analysis.rules.DEFAULT_REGISTRY` and hosts the
drivers that run every registered rule — AST and CFG/dataflow alike —
over one parsed :class:`~repro.analysis.rules.FileContext` per file
(the AST is parsed once and walked once; see ``docs/analysis.md``).

Syntactic rules registered here:

``no-direct-random``
    No ``random``-module calls (or ``from random import ...``) inside
    ``repro.sim``/``repro.mm``/``repro.experiments``/``repro.workloads``.
    Use :func:`repro.sim.rng.make_rng` — the one sanctioned entry point
    (itself exempt).  ``import random`` purely for type annotations is
    allowed; *calling* into the module is not.

``no-wallclock``
    No ``time.time()``/``time.monotonic()``/``datetime.now()`` and
    friends in the same scope: simulated time comes from
    ``Simulator.now``.

``no-float-page-eq``
    No ``==``/``!=`` against float literals where the other operand names
    a page/byte/nanosecond quantity; counts are integers, compare them as
    integers (or use explicit tolerances for derived ratios).

``mm-encapsulation``
    Writes to mm accounting structures (``owner_pages``, ``block_pages``,
    ``_free_pages``, ``free_pages``, ``isolated``, and mutations of a
    ``.blocks`` list) are only legal inside the owning modules
    (``repro.mm.zone``/``block``/``owner``/``manager``).  Everyone else
    must go through the manager API — exactly the boundary the runtime
    sanitizer audits.

``module-all-required``
    Every module under ``repro`` declares ``__all__``: the public surface
    is explicit, and star-imports stay predictable.

``no-bare-except``
    No bare ``except:`` anywhere under ``repro``.  The fault-injection
    plane works because failures travel through *named* exceptions with
    structured context; a bare handler also swallows the sanitizer's
    ``InvariantViolation``, turning accounting corruption into silence.

``no-mode-branching``
    No membership tests against ``DeploymentMode`` members (``is``/
    ``==``/``in`` and their negations) outside ``repro.modes``.  Each
    mode's behaviour lives on its registered backend object (elasticity,
    admission credit, datapath factory, fault sites); branching on mode
    identity elsewhere re-scatters exactly the special-casing the
    registry exists to hold in one place.  Ask the mode object, or add a
    hook to :class:`repro.modes.base.DeploymentBackend`.

``no-print-in-src``
    No ``print()`` calls under ``repro`` outside ``repro.experiments``
    (the CLI layer owns its report output; standalone ``tools/`` scripts
    are outside the package and unaffected).  Library code that wants to
    surface something emits a span, event or metric through
    :mod:`repro.obs` — observability that is structured, deterministic
    and exportable instead of interleaved stdout noise.

``no-adhoc-sweep``
    Experiment modules never hand-roll sweep loops: a ``for``/``while``
    whose body builds or runs whole scenarios (``run_scenario``,
    ``MicrobenchRig``, ``Simulator``, ``Fleet``, ...) bypasses
    :mod:`repro.sweep` — losing the stable cell ids, ``--workers``
    sharding and deterministic merge the engine provides.  Declare the
    points as a :class:`~repro.sweep.grid.SweepGrid` and iterate
    ``run_sweep`` results instead.  The scenario/rig engines themselves
    (``repro.experiments.serverless``/``microbench``) and the CLI
    dispatch are exempt.

``no-direct-evict``
    Container eviction is the lifecycle layer's monopoly: outside the
    agent internals (``repro.faas.agent``/``lifecycle``/``container``),
    nothing mutates an agent's idle pools (``.idle`` assignment or
    in-place mutator calls) or tears containers down directly
    (``.teardown()``/``.destroy_after_oom()``).  Ad-hoc eviction
    bypasses the pluggable :class:`~repro.faas.lifecycle.EvictionPolicy`
    ranking, the eviction records trace-report attributes cold starts
    to, and the unplug coupling — go through
    ``Agent.recycle_pass``/``request_reclaim``.

The CFG/dataflow rule families (``stale-guard-across-yield``,
``unchecked-result``, ``span-hygiene``, ``no-sim-sleep-side-effect``)
live in :mod:`repro.analysis.flow` and register on the same registry;
importing this module pulls them in so every driver below runs the full
set.

Suppression
-----------
Append ``# lint: allow[rule-name]`` (comma-separated names allowed, with
optional trailing rationale) to the offending line::

    started = time.time()  # lint: allow[no-wallclock] wall-clock display

Machine-readable output: every error is a :class:`LintError`;
:func:`render_json` emits them as a JSON array, and
:func:`repro.analysis.sarif.render_sarif` as a SARIF 2.1.0 log for CI
code-scanning annotations.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.analysis import cfg as cfg_mod
from repro.analysis.rules import (
    DEFAULT_REGISTRY,
    FileContext,
    LintError,
    RuleRegistry,
)

__all__ = [
    "LintError",
    "RULES",
    "lint_source",
    "lint_file",
    "lint_paths",
    "render_text",
    "render_json",
]


#: Packages the determinism rules apply to.
_DETERMINISM_SCOPE = (
    "repro.sim",
    "repro.mm",
    "repro.experiments",
    "repro.workloads",
)
#: The sanctioned seeded-RNG entry point (exempt from no-direct-random).
_RNG_ENTRYPOINT = "repro.sim.rng"
#: Modules allowed to mutate mm accounting structures.
_MM_OWNING_MODULES = {
    "repro.mm.zone",
    "repro.mm.block",
    "repro.mm.owner",
    "repro.mm.manager",
}
#: Attributes guarded by mm-encapsulation (write/mutation targets).
_GUARDED_WRITE_ATTRS = {
    "owner_pages",
    "block_pages",
    "_free_pages",
    "free_pages",
    "isolated",
}
#: Container attributes whose in-place mutator calls are guarded.
_GUARDED_CONTAINER_ATTRS = {"owner_pages", "block_pages", "blocks"}
_MUTATOR_METHODS = {
    "append",
    "clear",
    "extend",
    "insert",
    "pop",
    "popitem",
    "remove",
    "setdefault",
    "sort",
    "update",
}
#: Wall-clock call patterns (dotted suffixes).
_WALLCLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
}
#: Identifier fragments that mark a page/byte/time quantity.
_QUANTITY_RE = re.compile(r"(page|byte|block|_ns$|^ns_|latency|bytes)", re.I)
#: Calls that mark a loop body as running whole scenarios/sims — the
#: shapes no-adhoc-sweep bans from hand-rolled experiment loops.
_SCENARIO_ENTRYPOINTS = {
    "run_scenario",
    "run_single_reclaim",
    "run_reclaim_after_freeing",
    "MicrobenchRig",
    "Simulator",
    "Fleet",
    "ServerlessScenario",
}
#: Modules that own container eviction (exempt from no-direct-evict):
#: the agent drives it, the lifecycle layer ranks it, the container
#: implements it.
_EVICTION_OWNING_MODULES = {
    "repro.faas.agent",
    "repro.faas.lifecycle",
    "repro.faas.container",
}
#: Teardown entry points only the eviction owners may call.
_TEARDOWN_METHODS = {"teardown", "destroy_after_oom"}


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def module_name_for(path: Path) -> str:
    """Dotted module name of ``path`` (``src`` layout aware)."""
    parts = list(path.parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    elif "repro" in parts:
        parts = parts[parts.index("repro") :]
    else:
        parts = [path.name]
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _in_scope(module: str, packages: Sequence[str]) -> bool:
    return any(
        module == package or module.startswith(package + ".")
        for package in packages
    )


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _mentions_quantity(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and _QUANTITY_RE.search(child.id):
            return True
        if isinstance(child, ast.Attribute) and _QUANTITY_RE.search(child.attr):
            return True
    return False


# ----------------------------------------------------------------------
# Syntactic rules (registered on the shared registry, kind="ast").
# Each receives the per-file FileContext: ``ctx.nodes`` is the one
# cached walk of the module — rules never re-walk the tree themselves.
# ----------------------------------------------------------------------
_register = DEFAULT_REGISTRY.rule


@_register(
    "no-direct-random",
    (
        "sim/mm/experiments/workloads must draw randomness from "
        "repro.sim.rng.make_rng, never the bare random module"
    ),
)
def _rule_no_direct_random(ctx: FileContext) -> Iterator[LintError]:
    if (
        not _in_scope(ctx.module, _DETERMINISM_SCOPE)
        or ctx.module == _RNG_ENTRYPOINT
    ):
        return
    for node in ctx.nodes:
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            yield LintError(
                ctx.path,
                node.lineno,
                node.col_offset,
                "no-direct-random",
                "from random import ... bypasses the seeded streams; use "
                "repro.sim.rng.make_rng",
            )
        elif isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted is not None and (
                dotted == "random" or dotted.startswith("random.")
            ):
                yield LintError(
                    ctx.path,
                    node.lineno,
                    node.col_offset,
                    "no-direct-random",
                    f"call to {dotted}() is unseeded; draw from "
                    f"repro.sim.rng.make_rng instead",
                )


@_register(
    "no-wallclock",
    (
        "sim/mm/experiments/workloads must take time from the engine "
        "clock, never time.time()/datetime.now()"
    ),
)
def _rule_no_wallclock(ctx: FileContext) -> Iterator[LintError]:
    if not _in_scope(ctx.module, _DETERMINISM_SCOPE):
        return
    for node in ctx.nodes:
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        tail2 = ".".join(dotted.split(".")[-2:])
        if dotted in _WALLCLOCK_CALLS or tail2 in _WALLCLOCK_CALLS:
            yield LintError(
                ctx.path,
                node.lineno,
                node.col_offset,
                "no-wallclock",
                f"{dotted}() reads the wall clock; simulated time comes "
                f"from Simulator.now",
            )


@_register(
    "no-float-page-eq",
    (
        "page/byte/ns quantities are integers; never compare them to "
        "float literals with == or !="
    ),
)
def _rule_no_float_page_eq(ctx: FileContext) -> Iterator[LintError]:
    if not _in_scope(ctx.module, ("repro",)):
        return
    for node in ctx.nodes:
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        operands = [node.left] + list(node.comparators)
        has_float = any(
            isinstance(operand, ast.Constant)
            and isinstance(operand.value, float)
            for operand in operands
        )
        if has_float and any(_mentions_quantity(operand) for operand in operands):
            yield LintError(
                ctx.path,
                node.lineno,
                node.col_offset,
                "no-float-page-eq",
                "float equality on a page/byte/ns quantity; counts are "
                "integers — compare as int or use an explicit tolerance",
            )


@_register(
    "mm-encapsulation",
    (
        "mm accounting structures are only mutated by their owning "
        "modules (repro.mm.zone/block/owner/manager)"
    ),
)
def _rule_mm_encapsulation(ctx: FileContext) -> Iterator[LintError]:
    if (
        not _in_scope(ctx.module, ("repro",))
        or ctx.module in _MM_OWNING_MODULES
    ):
        return

    def guarded_attr(node: ast.AST) -> Optional[str]:
        # x.owner_pages = ..., x.owner_pages[k] = ..., del x.owner_pages[k]
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute) and node.attr in _GUARDED_WRITE_ATTRS:
            return node.attr
        return None

    for node in ctx.nodes:
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for target in targets:
            attr = guarded_attr(target)
            # Writes to *self* attributes define a class's own unrelated
            # field (e.g. an experiment dataclass named free_pages) only
            # inside mm modules; elsewhere the names are reserved.
            if attr is not None:
                yield LintError(
                    ctx.path,
                    node.lineno,
                    node.col_offset,
                    "mm-encapsulation",
                    f"write to guarded mm attribute .{attr} outside its "
                    f"owning module; go through the GuestMemoryManager API",
                )
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            method = node.func.attr
            container = node.func.value
            if (
                method in _MUTATOR_METHODS
                and isinstance(container, ast.Attribute)
                and container.attr in _GUARDED_CONTAINER_ATTRS
            ):
                yield LintError(
                    ctx.path,
                    node.lineno,
                    node.col_offset,
                    "mm-encapsulation",
                    f"in-place mutation .{container.attr}.{method}() outside "
                    f"the owning mm module; go through the "
                    f"GuestMemoryManager API",
                )


@_register(
    "module-all-required",
    "every repro module declares __all__ (explicit public surface)",
)
def _rule_module_all_required(ctx: FileContext) -> Iterator[LintError]:
    if not _in_scope(ctx.module, ("repro",)):
        return
    tree = ctx.tree
    if not tree.body:
        return  # empty files (namespace placeholders) have no surface
    for node in tree.body:
        if isinstance(node, ast.Assign):
            names = [
                target.id
                for target in node.targets
                if isinstance(target, ast.Name)
            ]
            if "__all__" in names:
                return
        elif isinstance(node, ast.AnnAssign):
            if (
                isinstance(node.target, ast.Name)
                and node.target.id == "__all__"
            ):
                return
    yield LintError(
        ctx.path,
        1,
        0,
        "module-all-required",
        f"module {ctx.module} does not declare __all__",
    )


@_register(
    "no-bare-except",
    (
        "never catch with a bare `except:`; name the exceptions a "
        "recovery path actually handles (a bare handler swallows "
        "InvariantViolation and friends)"
    ),
)
def _rule_no_bare_except(ctx: FileContext) -> Iterator[LintError]:
    if not _in_scope(ctx.module, ("repro",)):
        return
    for node in ctx.nodes:
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield LintError(
                ctx.path,
                node.lineno,
                node.col_offset,
                "no-bare-except",
                "bare `except:` swallows everything, including sanitizer "
                "InvariantViolations; name the exceptions this recovery "
                "path handles",
            )


@_register(
    "no-mode-branching",
    (
        "never branch on DeploymentMode membership outside repro.modes; "
        "behaviour belongs on the registered backend object"
    ),
)
def _rule_no_mode_branching(ctx: FileContext) -> Iterator[LintError]:
    if not _in_scope(ctx.module, ("repro",)) or _in_scope(
        ctx.module, ("repro.modes",)
    ):
        return

    def names_mode_member(operand: ast.AST) -> bool:
        for child in ast.walk(operand):
            if isinstance(child, ast.Attribute):
                dotted = _dotted(child)
                if dotted is not None and "DeploymentMode." in dotted:
                    return True
        return False

    for node in ctx.nodes:
        if not isinstance(node, ast.Compare):
            continue
        branching_ops = (ast.Is, ast.IsNot, ast.Eq, ast.NotEq, ast.In, ast.NotIn)
        if not any(isinstance(op, branching_ops) for op in node.ops):
            continue
        operands = [node.left] + list(node.comparators)
        if any(names_mode_member(operand) for operand in operands):
            yield LintError(
                ctx.path,
                node.lineno,
                node.col_offset,
                "no-mode-branching",
                "membership test against DeploymentMode members outside "
                "repro.modes; ask the mode object (mode.elastic, "
                "mode.fault_sites, ...) or add a DeploymentBackend hook",
            )


@_register(
    "no-print-in-src",
    (
        "library code never print()s; emit spans/metrics through "
        "repro.obs (experiments and tools keep their report output)"
    ),
)
def _rule_no_print_in_src(ctx: FileContext) -> Iterator[LintError]:
    if not _in_scope(ctx.module, ("repro",)) or _in_scope(
        ctx.module, ("repro.experiments",)
    ):
        return
    for node in ctx.nodes:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            yield LintError(
                ctx.path,
                node.lineno,
                node.col_offset,
                "no-print-in-src",
                "print() in library code; emit a span/event/metric through "
                "repro.obs (or move the report to repro.experiments)",
            )


@_register(
    "no-adhoc-sweep",
    (
        "experiment modules iterate sweep points through repro.sweep "
        "(grid + run_sweep), never hand-rolled scenario loops"
    ),
)
def _rule_no_adhoc_sweep(ctx: FileContext) -> Iterator[LintError]:
    if not _in_scope(ctx.module, ("repro.experiments",)) or ctx.module in (
        "repro.experiments.serverless",  # the scenario engine itself
        "repro.experiments.microbench",  # the rig the cells build
        "repro.experiments.__main__",  # dispatch, not a sweep
    ):
        return
    for node in ctx.nodes:
        if not isinstance(node, (ast.For, ast.While)):
            continue
        for child in ast.walk(node):
            if not isinstance(child, ast.Call):
                continue
            name = _dotted(child.func)
            if name is None:
                continue
            leaf = name.rsplit(".", 1)[-1]
            if leaf in _SCENARIO_ENTRYPOINTS:
                yield LintError(
                    ctx.path,
                    child.lineno,
                    child.col_offset,
                    "no-adhoc-sweep",
                    f"{leaf}() inside a hand-rolled sweep loop; declare "
                    "the points as a SweepGrid and run them through "
                    "repro.sweep.run_sweep (cells shard across --workers "
                    "and merge deterministically)",
                )
                break  # one finding per loop is enough


@_register(
    "no-direct-evict",
    (
        "container eviction goes through the lifecycle layer: never "
        "mutate an agent's idle pools or call container teardown "
        "outside repro.faas.agent/lifecycle/container"
    ),
)
def _rule_no_direct_evict(ctx: FileContext) -> Iterator[LintError]:
    if (
        not _in_scope(ctx.module, ("repro",))
        or ctx.module in _EVICTION_OWNING_MODULES
    ):
        return

    def is_idle_pool(node: ast.AST) -> bool:
        # x.idle = ..., x.idle[k] = ..., del x.idle[k]
        if isinstance(node, ast.Subscript):
            node = node.value
        return isinstance(node, ast.Attribute) and node.attr == "idle"

    for node in ctx.nodes:
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for target in targets:
            if is_idle_pool(target):
                yield LintError(
                    ctx.path,
                    node.lineno,
                    node.col_offset,
                    "no-direct-evict",
                    "write to an agent idle pool outside the lifecycle "
                    "layer; evict through Agent.recycle_pass/"
                    "request_reclaim",
                )
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            method = node.func.attr
            if method in _TEARDOWN_METHODS:
                yield LintError(
                    ctx.path,
                    node.lineno,
                    node.col_offset,
                    "no-direct-evict",
                    f".{method}() outside the lifecycle layer bypasses "
                    f"eviction ranking, records and the unplug coupling; "
                    f"go through Agent.recycle_pass/request_reclaim",
                )
            elif method in _MUTATOR_METHODS and is_idle_pool(node.func.value):
                yield LintError(
                    ctx.path,
                    node.lineno,
                    node.col_offset,
                    "no-direct-evict",
                    f"in-place mutation .idle.{method}() outside the "
                    f"lifecycle layer; evict through Agent.recycle_pass/"
                    f"request_reclaim",
                )


@_register(
    "no-unbounded-series",
    (
        "telemetry recorded from simulator loops in cluster//metrics "
        "must stream through bounded RollupSeries, not raw TimeSeries/"
        "list appends (exact-mode paths carry an explicit allow)"
    ),
)
def _rule_no_unbounded_series(ctx: FileContext) -> Iterator[LintError]:
    if not _in_scope(ctx.module, ("repro.cluster", "repro.metrics")):
        return

    # Finding A: raw TimeSeries construction anywhere in scope — every
    # instance is either a short-horizon exact-mode path (annotate it)
    # or a bounded-memory bug waiting for a long trace.
    for node in ctx.nodes:
        if isinstance(node, ast.Call):
            name = _dotted(node.func)
            if name is not None and name.rsplit(".", 1)[-1] == "TimeSeries":
                yield LintError(
                    ctx.path,
                    node.lineno,
                    node.col_offset,
                    "no-unbounded-series",
                    "TimeSeries() retains every sample; collect through "
                    "repro.obs.rollup.RollupSeries (O(buckets) resident) "
                    "or annotate the exact-mode path",
                )

    def is_series_record(call: ast.Call) -> bool:
        # x.series.record(...), x.used[key].record(...), *_series.record
        receiver = call.func.value  # type: ignore[union-attr]
        if isinstance(receiver, ast.Subscript):
            return True
        return isinstance(receiver, ast.Attribute) and (
            receiver.attr in ("series", "samples")
            or receiver.attr.endswith("_series")
        )

    def is_accumulator_append(call: ast.Call) -> bool:
        # x.samples.append(...), *_events.append, *_series.append
        receiver = call.func.value  # type: ignore[union-attr]
        return isinstance(receiver, ast.Attribute) and (
            receiver.attr == "samples"
            or receiver.attr.endswith("_events")
            or receiver.attr.endswith("_series")
        )

    # Finding B: per-tick appends inside simulator coroutines — any
    # loop in a generator function samples on the simulated clock, so
    # unbounded appends there grow with the horizon.
    for info in ctx.functions:
        if not cfg_mod.contains_yield(info.node):
            continue
        for loop in ast.walk(info.node):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            for child in ast.walk(loop):
                if not isinstance(child, ast.Call) or not isinstance(
                    child.func, ast.Attribute
                ):
                    continue
                method = child.func.attr
                if method == "record" and is_series_record(child):
                    yield LintError(
                        ctx.path,
                        child.lineno,
                        child.col_offset,
                        "no-unbounded-series",
                        f"{info.qualname}: per-tick .record() into an "
                        "append-only series inside a simulator loop; "
                        "record into a RollupSeries or annotate the "
                        "exact-mode path",
                    )
                elif method == "append" and is_accumulator_append(child):
                    yield LintError(
                        ctx.path,
                        child.lineno,
                        child.col_offset,
                        "no-unbounded-series",
                        f"{info.qualname}: per-tick .append() onto an "
                        "unbounded accumulator inside a simulator loop; "
                        "aggregate through a RollupSeries/counter or "
                        "annotate the bounded path",
                    )


# Importing the flow module registers the CFG/dataflow rule families on
# the same registry, so every driver below runs the full set.  The
# import sits *after* the AST rules so a fresh process always lists
# rules in the same order (AST first, flow second).
import repro.analysis.flow  # noqa: E402,F401  (registration side effect)

#: rule name → one-line description, for every registered rule (the
#: lintable contract; kept as a plain dict for back-compat with callers
#: that predate the registry).
RULES: Dict[str, str] = DEFAULT_REGISTRY.descriptions()


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def lint_source(
    source: str,
    path: str = "<string>",
    module: Optional[str] = None,
    registry: Optional[RuleRegistry] = None,
) -> List[LintError]:
    """Lint one source string; returns findings after suppression.

    Every registered rule — syntactic and flow — runs over one shared
    :class:`FileContext` (one parse, one AST walk, CFGs built lazily).
    """
    if module is None:
        module = module_name_for(Path(path))
    if registry is None:
        registry = DEFAULT_REGISTRY
    try:
        ctx = FileContext(source, path, module)
    except SyntaxError as error:
        return [
            LintError(
                path,
                error.lineno or 1,
                error.offset or 0,
                "syntax-error",
                f"cannot parse: {error.msg}",
            )
        ]
    errors: List[LintError] = []
    for rule in registry:
        for error in rule.check(ctx):
            if error.rule in ctx.suppressed.get(error.line, ()):
                continue
            errors.append(error)
    errors.sort(key=lambda e: (e.path, e.line, e.col, e.rule))
    return errors


def lint_file(
    path: Path, registry: Optional[RuleRegistry] = None
) -> List[LintError]:
    """Lint one file on disk."""
    return lint_source(
        path.read_text(encoding="utf-8"),
        str(path),
        module_name_for(path),
        registry=registry,
    )


def iter_py_files(paths: Iterable[Path]) -> List[Path]:
    """Every ``.py`` file under ``paths`` (files or directories), in the
    deterministic order the lint drivers visit them."""
    files: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(
                sorted(
                    candidate
                    for candidate in path.rglob("*.py")
                    if not any(
                        part.startswith(".") or part.endswith(".egg-info")
                        for part in candidate.parts
                    )
                )
            )
        else:
            files.append(path)
    return files


def lint_paths(
    paths: Iterable[Path], registry: Optional[RuleRegistry] = None
) -> List[LintError]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    errors: List[LintError] = []
    for file in iter_py_files(paths):
        errors.extend(lint_file(file, registry=registry))
    return errors


def render_text(errors: Sequence[LintError]) -> str:
    """``path:line:col: [rule] message`` — one finding per line."""
    return "\n".join(
        f"{error.path}:{error.line}:{error.col}: [{error.rule}] {error.message}"
        for error in errors
    )


def render_json(errors: Sequence[LintError]) -> str:
    """Findings as a JSON array (machine-readable output mode)."""
    return json.dumps([asdict(error) for error in errors], indent=2)
