"""CFG/dataflow lint rules over simulator coroutines.

The engine runs processes cooperatively: code between two ``yield``
points is atomic, but *nothing* checked before a yield is guaranteed to
hold after it.  PR 4 fixed exactly such a bug by hand (the concurrent
DIMM plug slot race: ``free_dimms()`` counted, then the RTT yield, then
blocks onlined into slots another request had claimed meanwhile).  The
rules here prove the absence of that bug class statically, over *all*
interleavings, instead of the handful a seeded chaos run happens to
produce.

Rule families
-------------

``stale-guard-across-yield`` (flow)
    Inside a coroutine, a value derived from shared state (free/
    plugged/reserved/ledger-style reads) guards a branch, control then
    crosses a yield point, and the stale value still drives a mutation
    of shared state — with neither a *reservation* (the value published
    into shared state before the yield, e.g. ``self._reserved.update``)
    nor a *re-validation* (a fresh shared-state read guarding the
    post-yield path).  Flagged at the act line, naming the check line.

``unchecked-result`` (flow)
    The datapaths report failure as values (``PlugResult.error``,
    ``UnplugResult.unplugged_bytes``, ``AdmissionResult.admitted``,
    ``RouteRejection.reason``) because exceptions do not cross
    simulated-process joins.  A produced result whose success field is
    never read on some CFG path before the binding dies is a silently
    swallowed failure.

``span-hygiene`` (flow)
    A ``Tracer.span(...)`` binding with some normal-completion CFG path
    that neither ``close()``s the span nor hands it off (helper call,
    return, container) — the static complement of the runtime
    ``open_spans() == 0`` gate.

``no-sim-sleep-side-effect`` (ast)
    The syntactic cousin of the stale-guard rule: mutating shared
    mm/cluster state in the same statement chain as a ``yield
    Timeout(...)`` expression result fuses a suspension and a mutation
    into one line, hiding the interleaving window.

``no-unbounded-retry`` (ast)
    A ``while True`` loop whose body speaks the retry vocabulary
    (attempt counters, backoff, failover) must reference an explicit
    bounded budget knob (``max_retries``, ``plug_retries``,
    ``max_failovers``, ``failure_threshold``, ...) somewhere in the
    loop.  A retry loop with no bound spins forever against a host
    that died — the fleet layer's recovery paths all terminate
    *because* every budget is finite.

All five report plain :class:`LintError` findings, honour the standard
``# lint: allow[rule-name]`` suppression, and register themselves on
:data:`repro.analysis.rules.DEFAULT_REGISTRY`.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.cfg import CFG, CFGNode, FunctionInfo
from repro.analysis.rules import (
    DEFAULT_REGISTRY,
    FileContext,
    LintError,
)

__all__ = [
    "RESULT_PRODUCERS",
    "SHARED_STATE_FRAGMENTS",
    "shared_reads",
]

# ----------------------------------------------------------------------
# Shared-state vocabulary
# ----------------------------------------------------------------------
#: Identifier fragments (snake_case segments) that mark an attribute or
#: accessor as *shared simulation state*: guest occupancy, host ledger,
#: arbiter commitments, pool membership.  A read of such an attribute
#: feeding a guard is what can go stale across a yield.
SHARED_STATE_FRAGMENTS = frozenset(
    {
        "free",
        "plugged",
        "unplugged",
        "reserved",
        "pending",
        "reported",
        "reportable",
        "stealable",
        "inflated",
        "idle",
        "live",
        "elastic",
        "populated",
        "unassigned",
        "committed",
        "occupancy",
        "watermark",
        "flight",  # in_flight
        "backlog",
    }
)

#: Method names that mutate shared simulation state wherever they are
#: called (host ledger, guest block states, page accounting, arbiter
#: commitments).
_DOMAIN_MUTATORS = frozenset(
    {
        "charge",
        "discharge",
        "online_block",
        "offline_and_remove",
        "isolate_block",
        "unisolate_block",
        "alloc_pages",
        "free_pages",
        "free_all",
        "assign",
        "unassign",
        "release",
        "commit",
        "migrate",
    }
)

#: Generic container mutators: these only count as shared-state
#: mutations when the receiver attribute itself is shared-named
#: (``self._reserved.add``, ``state.idle.remove``, ...).
_CONTAINER_MUTATORS = frozenset(
    {
        "add",
        "append",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "remove",
        "update",
    }
)


def _is_shared_name(name: str) -> bool:
    segments = name.lower().split("_")
    return any(segment in SHARED_STATE_FRAGMENTS for segment in segments)


def shared_reads(expr: ast.AST) -> List[str]:
    """Names of shared-state attributes *read* inside ``expr``."""
    reads: List[str] = []
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Load)
            and _is_shared_name(node.attr)
        ):
            reads.append(node.attr)
    return reads


def _names_read(expr: ast.AST) -> Set[str]:
    return {
        node.id
        for node in ast.walk(expr)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
    }


def _target_names(target: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            names.add(node.id)
    return names


def _rhs_has_yield(expr: ast.AST) -> bool:
    return any(
        isinstance(node, (ast.Yield, ast.YieldFrom, ast.Await))
        for node in ast.walk(expr)
    )


_SIMPLE_STMTS = (
    ast.Expr,
    ast.Assign,
    ast.AugAssign,
    ast.AnnAssign,
    ast.Return,
    ast.Delete,
    ast.Assert,
    ast.Raise,
)


def _stmt_parts(stmt: ast.AST) -> List[ast.AST]:
    """The expressions *owned* by one CFG node.

    Compound statements contribute only their head (test/iterator/item
    expressions) — their bodies are separate CFG nodes — and nested
    function/class definitions contribute nothing (their bodies get
    their own CFGs).
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if hasattr(ast, "Match") and isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(
        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Try)
    ):
        return []
    if isinstance(stmt, ast.ExceptHandler):
        return []
    return [stmt]


@dataclass(frozen=True)
class _Assignment:
    """One name-binding statement inside a function body."""

    node_index: int
    targets: Tuple[str, ...]
    value: ast.AST
    via_yield: bool  # RHS awaits: the bound value is *fresh*, not stale


def _assignments(graph: CFG) -> List[_Assignment]:
    out: List[_Assignment] = []
    for node in graph.stmt_nodes():
        stmt = node.stmt
        if isinstance(stmt, ast.Assign):
            targets: Set[str] = set()
            for target in stmt.targets:
                targets |= _target_names(target)
            if targets:
                out.append(
                    _Assignment(
                        node.index,
                        tuple(sorted(targets)),
                        stmt.value,
                        _rhs_has_yield(stmt.value),
                    )
                )
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = _target_names(stmt.target)
            if targets:
                out.append(
                    _Assignment(
                        node.index,
                        tuple(sorted(targets)),
                        stmt.value,
                        _rhs_has_yield(stmt.value),
                    )
                )
        elif isinstance(stmt, ast.AugAssign):
            targets = _target_names(stmt.target)
            if targets:
                out.append(
                    _Assignment(
                        node.index,
                        tuple(sorted(targets)),
                        stmt.value,
                        _rhs_has_yield(stmt.value),
                    )
                )
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            targets = _target_names(stmt.target)
            if targets:
                out.append(
                    _Assignment(
                        node.index,
                        tuple(sorted(targets)),
                        stmt.iter,
                        False,
                    )
                )
    return out


def _taint_closure(
    assignments: Sequence[_Assignment], seeds: Set[str]
) -> Set[str]:
    """Names transitively derived from ``seeds`` (flow-insensitive).

    Bindings whose right-hand side contains a yield are *not*
    propagated through: the awaited value is produced by fresh
    execution after the suspension, so it cannot carry the stale
    pre-yield observation.
    """
    tainted = set(seeds)
    changed = True
    while changed:
        changed = False
        for assign in assignments:
            if assign.via_yield:
                continue
            if tainted & _names_read(assign.value):
                for name in assign.targets:
                    if name not in tainted:
                        tainted.add(name)
                        changed = True
    return tainted


def _shared_mutation_with(
    stmt: ast.AST, tainted: Set[str]
) -> Optional[str]:
    """Does this CFG node mutate shared state using a tainted value?

    Returns a short description of the mutation for the finding
    message, or ``None``.  Yield-bearing statements are excluded: the
    arguments of ``yield from helper(x)`` are captured before the
    suspension, which is a hand-off, not a stale post-yield use.
    """
    for part in _stmt_parts(stmt):
        if _rhs_has_yield(part):
            return None
        for node in ast.walk(part):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                method = node.func.attr
                receiver = node.func.value
                receiver_shared = (
                    isinstance(receiver, ast.Attribute)
                    and _is_shared_name(receiver.attr)
                )
                if method in _DOMAIN_MUTATORS or (
                    method in _CONTAINER_MUTATORS and receiver_shared
                ):
                    arg_names: Set[str] = set()
                    for arg in list(node.args) + [
                        kw.value for kw in node.keywords
                    ]:
                        arg_names |= _names_read(arg)
                    if arg_names & tainted:
                        return f".{method}()"
    if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        value = stmt.value
        if value is not None and _names_read(value) & tainted:
            for target in targets:
                inner = target
                if isinstance(inner, ast.Subscript):
                    inner = inner.value
                if isinstance(inner, ast.Attribute) and _is_shared_name(
                    inner.attr
                ):
                    return f".{inner.attr} ="
    return None


# ----------------------------------------------------------------------
# stale-guard-across-yield
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Root:
    """One shared-state observation bound to local names."""

    node_index: int
    line: int
    names: Tuple[str, ...]
    read: str  # the shared attribute that was observed


def _guard_test(stmt: Optional[ast.AST]) -> Optional[ast.AST]:
    if isinstance(stmt, (ast.If, ast.While)):
        return stmt.test
    return None


def _stale_guard_function(
    ctx: FileContext, info: FunctionInfo
) -> Iterator[LintError]:
    graph = ctx.cfg(info)
    if not graph.yield_nodes:
        return
    assignments = _assignments(graph)
    nodes = graph.nodes

    roots: List[_Root] = []
    for assign in assignments:
        if assign.via_yield:
            continue
        reads = shared_reads(assign.value)
        observed: Optional[str] = reads[0] if reads else None
        if observed is None:
            # A snapshot can also be *named* for what it observes
            # (``free_slots = [dimm for ... if blocks[i].state is
            # ABSENT]``): a shared-named binding computed from object
            # state is a shared observation too.
            shared_targets = [
                name for name in assign.targets if _is_shared_name(name)
            ]
            if shared_targets and any(
                isinstance(node, ast.Attribute)
                for node in ast.walk(assign.value)
            ):
                observed = shared_targets[0]
        if observed is not None:
            node = nodes[assign.node_index]
            roots.append(
                _Root(assign.node_index, node.line, assign.targets, observed)
            )

    flagged: Set[Tuple[int, int]] = set()
    for root in roots:
        tainted = _taint_closure(assignments, set(root.names))

        # State: (node, stale, published, guard_line)
        start = (root.node_index, False, False, 0)
        seen: Set[Tuple[int, bool, bool, int]] = {start}
        queue = deque([start])
        while queue:
            index, stale, published, guard_line = queue.popleft()
            if index == root.node_index:
                # Control re-reached the observation itself (loop back
                # edge): the snapshot is recomputed fresh, so staleness
                # and any guard taken on the old value reset.  A
                # reservation published into shared state persists.
                stale, guard_line = False, 0
            else:
                node = nodes[index]
                stmt = node.stmt
                if stmt is not None:
                    mutation = _shared_mutation_with(stmt, tainted)
                    if mutation is not None:
                        if stale and not published and guard_line:
                            key = (root.node_index, node.line)
                            if key not in flagged:
                                flagged.add(key)
                                yield LintError(
                                    ctx.path,
                                    node.line,
                                    getattr(stmt, "col_offset", 0),
                                    "stale-guard-across-yield",
                                    f"{info.qualname}: mutation {mutation} "
                                    f"uses a value observed from shared "
                                    f"state ({root.read!r}, line "
                                    f"{root.line}) and checked at line "
                                    f"{guard_line}, but a yield intervenes "
                                    f"— re-validate after resuming or "
                                    f"reserve before yielding (check line "
                                    f"{guard_line}, act line {node.line})",
                                )
                        elif not stale:
                            # Pre-yield shared-state write involving the
                            # observed value: a reservation/claim.
                            published = True
                    test = _guard_test(stmt)
                    if test is not None:
                        if _names_read(test) & tainted or (
                            not stale and shared_reads(test)
                        ):
                            guard_line = node.line
                        if stale and shared_reads(test):
                            # Fresh shared-state read guarding the
                            # post-yield path: re-validation.
                            stale = False
                    if node.is_yield:
                        stale = True
            for succ in nodes[index].succs:
                state = (succ, stale, published, guard_line)
                if state not in seen:
                    seen.add(state)
                    queue.append(state)


def _check_stale_guard(ctx: FileContext) -> Iterator[LintError]:
    if not _in_repro(ctx.module):
        return
    for info in ctx.functions:
        yield from _stale_guard_function(ctx, info)


# ----------------------------------------------------------------------
# unchecked-result
# ----------------------------------------------------------------------
#: producer (method or constructor name) → the attributes whose read
#: constitutes *checking* the result.  ``request_plug``/``request_unplug``
#: return a Process whose ``.value`` carries the result; the obligation
#: transfers through ``p.value`` and ``r = yield p``.
RESULT_PRODUCERS: Dict[str, frozenset] = {
    "request_plug": frozenset(
        {"error", "fault", "fully_plugged", "plugged_bytes"}
    ),
    "request_unplug": frozenset(
        {
            "error",
            "fault",
            "fully_unplugged",
            "unplugged_bytes",
            "requested_bytes",
            "shortfall",
        }
    ),
    "request_resize": frozenset(
        {"error", "fault", "fully_plugged", "fully_unplugged",
         "plugged_bytes", "unplugged_bytes"}
    ),
    "admit": frozenset({"admitted", "reason"}),
    "AdmissionResult": frozenset({"admitted", "reason"}),
    "RouteRejection": frozenset({"reason"}),
    "PlugResult": frozenset({"error", "fault", "fully_plugged"}),
    "UnplugResult": frozenset(
        {"fully_unplugged", "unplugged_bytes", "requested_bytes"}
    ),
    # Fleet failure domains: evacuation outcomes and circuit-breaker
    # state transitions are values too — a dropped EvacuationResult is
    # a silently lost VM, a dropped BreakerTransition is a breaker trip
    # that never reaches traces or reports.
    "evacuate": frozenset({"evacuated", "rejected", "ok"}),
    "EvacuationResult": frozenset({"evacuated", "rejected", "ok"}),
    "poll": frozenset({"from_state", "to_state"}),
    "record_success": frozenset({"from_state", "to_state"}),
    "record_failure": frozenset({"from_state", "to_state"}),
    "BreakerTransition": frozenset({"from_state", "to_state"}),
}

#: Producers whose binding is a Process handle: ``yield p`` schedules
#: the join (it does not check anything), ``p.value`` is the result.
_PROCESS_PRODUCERS = frozenset(
    {"request_plug", "request_unplug", "request_resize"}
)


def _call_producer(expr: ast.AST) -> Optional[str]:
    """Producer name if ``expr`` is (or awaits) a producing call."""
    node = expr
    while isinstance(node, (ast.Yield, ast.YieldFrom, ast.Await)):
        if node.value is None:
            return None
        node = node.value
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute):
        name = func.attr
    elif isinstance(func, ast.Name):
        name = func.id
    else:
        return None
    return name if name in RESULT_PRODUCERS else None


def _single_target(stmt: ast.AST) -> Optional[str]:
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
        if isinstance(target, ast.Name):
            return target.id
    if isinstance(stmt, ast.AnnAssign) and isinstance(
        stmt.target, ast.Name
    ):
        return stmt.target.id
    return None


def _uses_of(stmt: ast.AST, name: str) -> List[ast.AST]:
    """Direct parents of Load-context occurrences of ``name`` in the
    expressions this CFG node owns."""
    uses = []
    for part in _stmt_parts(stmt):
        for node in ast.walk(part):
            for child in ast.iter_child_nodes(node):
                if (
                    isinstance(child, ast.Name)
                    and child.id == name
                    and isinstance(child.ctx, ast.Load)
                ):
                    uses.append(node)
    return uses


def _classify_use(
    stmt: ast.AST, name: str, success_attrs: frozenset, is_process: bool
) -> str:
    """'checked' | 'escaped' | 'none' for uses of ``name`` in ``stmt``."""
    outcome = "none"
    for parent in _uses_of(stmt, name):
        if isinstance(parent, ast.Attribute):
            if is_process:
                if parent.attr == "value":
                    return "checked"  # obligation transfers to the target
                continue  # other process attributes are incidental
            if parent.attr in success_attrs:
                return "checked"
            continue  # reading a non-success field is not a check
        if is_process and isinstance(parent, (ast.Yield, ast.Expr)):
            continue  # `yield p` only schedules the join
        if isinstance(parent, (ast.Yield, ast.YieldFrom, ast.Await)):
            if is_process:
                continue
            outcome = "escaped"
        elif isinstance(parent, ast.Call):
            outcome = "escaped"  # handed to a helper that inspects it
        elif isinstance(
            parent,
            (
                ast.Return,
                ast.Tuple,
                ast.List,
                ast.Dict,
                ast.Set,
                ast.Subscript,
                ast.Starred,
                ast.comprehension,
                ast.Compare,
                ast.BoolOp,
            ),
        ):
            outcome = "escaped"
        elif isinstance(parent, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            value = getattr(parent, "value", None)
            if value is not None and name in _names_read(value):
                targets = (
                    parent.targets
                    if isinstance(parent, ast.Assign)
                    else [parent.target]
                )
                if any(
                    not isinstance(target, ast.Name) for target in targets
                ):
                    outcome = "escaped"  # stored into attribute/container
    return outcome


def _rebinds(stmt: ast.AST, name: str) -> bool:
    if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        return any(name in _target_names(target) for target in targets)
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return name in _target_names(stmt.target)
    return False


def _unchecked_result_function(
    ctx: FileContext, info: FunctionInfo
) -> Iterator[LintError]:
    graph = ctx.cfg(info)
    nodes = graph.nodes

    # (def node, bound name, producer, is_process)
    obligations: List[Tuple[int, str, str, bool]] = []
    process_vars: Dict[str, str] = {}
    for node in graph.stmt_nodes():
        stmt = node.stmt
        target = _single_target(stmt)
        if target is None:
            continue
        value = getattr(stmt, "value", None)
        if value is None:
            continue
        producer = _call_producer(value)
        if producer is not None:
            is_process = producer in _PROCESS_PRODUCERS and not isinstance(
                value, (ast.Yield, ast.YieldFrom, ast.Await)
            )
            if is_process:
                process_vars[target] = producer
            obligations.append((node.index, target, producer, is_process))
            continue
        # r = p.value  /  r = yield p : the result of a tracked process.
        source: Optional[str] = None
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "value"
            and isinstance(value.value, ast.Name)
        ):
            source = value.value.id
        elif isinstance(value, ast.Yield) and isinstance(
            value.value, ast.Name
        ):
            source = value.value.id
        if source is not None and source in process_vars:
            obligations.append(
                (node.index, target, process_vars[source], False)
            )

    for def_index, name, producer, is_process in obligations:
        success = RESULT_PRODUCERS[producer]
        # BFS: does some path reach a death point (rebinding or function
        # exit) with the result neither checked nor escaped?
        seen = {def_index}
        queue = deque([def_index])
        unchecked_path = False
        while queue and not unchecked_path:
            index = queue.popleft()
            for succ in nodes[index].succs:
                node = nodes[succ]
                if node.index == graph.exit:
                    unchecked_path = True
                    break
                if node.index == graph.raise_exit or node.stmt is None:
                    if succ not in seen:
                        seen.add(succ)
                        queue.append(succ)
                    continue
                use = _classify_use(node.stmt, name, success, is_process)
                if use in ("checked", "escaped"):
                    continue  # obligation satisfied on this path
                if _rebinds(node.stmt, name):
                    unchecked_path = True
                    break
                if succ not in seen:
                    seen.add(succ)
                    queue.append(succ)
        if unchecked_path:
            def_node = nodes[def_index]
            attrs = ", ".join(f".{attr}" for attr in sorted(success)[:3])
            yield LintError(
                ctx.path,
                def_node.line,
                getattr(def_node.stmt, "col_offset", 0),
                "unchecked-result",
                f"{info.qualname}: result of {producer}(...) bound to "
                f"{name!r} dies unchecked on some path — failures travel "
                f"as values here, so read a success field ({attrs}) or "
                f"propagate the result",
            )


def _check_unchecked_result(ctx: FileContext) -> Iterator[LintError]:
    if not _in_repro(ctx.module):
        return
    for info in ctx.functions:
        yield from _unchecked_result_function(ctx, info)


# ----------------------------------------------------------------------
# span-hygiene
# ----------------------------------------------------------------------
def _span_bindings(graph: CFG) -> List[Tuple[int, str]]:
    """(node, name) pairs for ``name = <tracer>.span(...)`` bindings."""
    bindings = []
    for node in graph.stmt_nodes():
        stmt = node.stmt
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            continue  # context managers close on exit by construction
        target = _single_target(stmt)
        if target is None:
            continue
        value = getattr(stmt, "value", None)
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "span"
        ):
            bindings.append((node.index, target))
    return bindings


def _span_settled(stmt: ast.AST, name: str) -> bool:
    """Does ``stmt`` close the span or hand it off?

    Only the expressions this CFG node *owns* count (compound
    statements contribute their head): a ``close()`` inside one branch
    of an ``if`` settles that branch's path, not the head node's.
    """
    for part in _stmt_parts(stmt):
        if _part_settles(part, name):
            return True
    return False


def _part_settles(part: ast.AST, name: str) -> bool:
    for node in ast.walk(part):
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "close"
                and isinstance(func.value, ast.Name)
                and func.value.id == name
            ):
                return True
            operands = list(node.args) + [kw.value for kw in node.keywords]
            for operand in operands:
                if name in _names_read(operand):
                    return True  # escaped to a helper that owns closing
        elif isinstance(node, ast.Return):
            if node.value is not None and name in _names_read(node.value):
                return True
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            value = getattr(node, "value", None)
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            if value is not None and name in _names_read(value):
                if any(not isinstance(t, ast.Name) for t in targets):
                    return True  # stored for later closing
    return False


def _span_hygiene_function(
    ctx: FileContext, info: FunctionInfo
) -> Iterator[LintError]:
    graph = ctx.cfg(info)
    nodes = graph.nodes
    for def_index, name in _span_bindings(graph):
        seen = {def_index}
        queue = deque([def_index])
        leaky = False
        while queue and not leaky:
            index = queue.popleft()
            for succ in nodes[index].succs:
                if succ == graph.exit:
                    leaky = True
                    break
                if succ in seen:
                    continue
                seen.add(succ)
                node = nodes[succ]
                if node.stmt is not None and (
                    _span_settled(node.stmt, name)
                    or _rebinds(node.stmt, name)
                ):
                    continue  # path settled; do not walk past it
                queue.append(succ)
        if leaky:
            def_node = nodes[def_index]
            yield LintError(
                ctx.path,
                def_node.line,
                getattr(def_node.stmt, "col_offset", 0),
                "span-hygiene",
                f"{info.qualname}: span {name!r} is opened here but some "
                f"exit path never close()s or hands it off — leaked spans "
                f"trip the open_spans()==0 runtime gate; close in a "
                f"finally or use `with tracer.span(...)`",
            )


def _check_span_hygiene(ctx: FileContext) -> Iterator[LintError]:
    if not _in_repro(ctx.module):
        return
    for info in ctx.functions:
        yield from _span_hygiene_function(ctx, info)


# ----------------------------------------------------------------------
# no-sim-sleep-side-effect
# ----------------------------------------------------------------------
_TIMEOUT_CALL_NAMES = frozenset({"Timeout", "timeout"})


def _yields_timeout(stmt: ast.AST) -> bool:
    for node in ast.walk(stmt):
        if isinstance(node, (ast.Yield, ast.Await)) and isinstance(
            node.value, ast.Call
        ):
            func = node.value.func
            name = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else None
            )
            if name in _TIMEOUT_CALL_NAMES:
                return True
    return False


def _mutates_shared_state(stmt: ast.AST) -> Optional[str]:
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            method = node.func.attr
            receiver = node.func.value
            receiver_shared = isinstance(
                receiver, ast.Attribute
            ) and _is_shared_name(receiver.attr)
            if method in _DOMAIN_MUTATORS or (
                method in _CONTAINER_MUTATORS and receiver_shared
            ):
                return f".{method}()"
    if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        for target in targets:
            inner = target
            if isinstance(inner, ast.Subscript):
                inner = inner.value
            if isinstance(inner, ast.Attribute) and _is_shared_name(
                inner.attr
            ):
                return f".{inner.attr} ="
    return None


def _check_sim_sleep_side_effect(ctx: FileContext) -> Iterator[LintError]:
    if not _in_repro(ctx.module):
        return
    for node in ctx.nodes:
        # Only *simple* statements form one expression chain: compound
        # statements (and nested scopes) contain their bodies, which
        # would make "same statement" span whole functions.
        if not isinstance(node, _SIMPLE_STMTS):
            continue
        if not _yields_timeout(node):
            continue
        mutation = _mutates_shared_state(node)
        if mutation is not None:
            yield LintError(
                ctx.path,
                node.lineno,
                node.col_offset,
                "no-sim-sleep-side-effect",
                f"statement mutates shared state ({mutation}) in the same "
                f"expression chain as a `yield Timeout(...)` — split the "
                f"sleep from the mutation so the interleaving window is "
                f"visible (state read before the yield is stale after it)",
            )


# ----------------------------------------------------------------------
# no-unbounded-retry
# ----------------------------------------------------------------------
#: Attribute/name spellings whose presence inside a retry loop proves
#: the retry count is capped by an explicit policy knob.  Every bound
#: the simulator's resilience layers expose is spelled here; a new
#: budget field joins this set when it is introduced.
_BOUNDED_BUDGET_NAMES = frozenset(
    {
        "max_retries",
        "plug_retries",
        "max_attempts",
        "deferred_attempts",
        "max_fires",
        "max_failovers",
        "failure_threshold",
        "half_open_probes",
        "quarantine_after",
        "degrade_after",
    }
)

#: Identifier fragments (snake_case segments) that mark a loop body as
#: retry-shaped: it counts attempts, backs off, or re-dispatches.
_RETRY_FRAGMENTS = frozenset(
    {
        "retry",
        "retries",
        "retried",
        "attempt",
        "attempts",
        "failover",
        "failovers",
        "backoff",
        "redispatch",
    }
)


def _loop_runs_forever(test: ast.AST) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value)


def _identifiers(tree: ast.AST) -> Iterator[str]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, ast.Attribute):
            yield node.attr


def _check_no_unbounded_retry(ctx: FileContext) -> Iterator[LintError]:
    if not _in_repro(ctx.module):
        return
    for node in ctx.nodes:
        if not isinstance(node, ast.While):
            continue
        if not _loop_runs_forever(node.test):
            continue
        retry_names = sorted(
            {
                ident
                for ident in _identifiers(node)
                if any(
                    segment in _RETRY_FRAGMENTS
                    for segment in ident.lower().split("_")
                )
            }
        )
        if not retry_names:
            continue  # an event/service loop, not a retry loop
        if any(
            ident in _BOUNDED_BUDGET_NAMES for ident in _identifiers(node)
        ):
            continue  # references an explicit bound: terminates
        mentioned = ", ".join(retry_names[:3])
        yield LintError(
            ctx.path,
            node.lineno,
            node.col_offset,
            "no-unbounded-retry",
            f"`while True` retry loop (mentions {mentioned}) never "
            f"references a bounded budget "
            f"(max_retries/plug_retries/max_failovers/...) — an "
            f"unbounded retry spins forever against a dead host; gate "
            f"the loop on an explicit policy knob",
        )


# ----------------------------------------------------------------------
# Registration
# ----------------------------------------------------------------------
def _in_repro(module: str) -> bool:
    return module == "repro" or module.startswith("repro.")


_register = DEFAULT_REGISTRY.rule

_register(
    "stale-guard-across-yield",
    (
        "a guard computed from shared state must not drive a mutation "
        "on the far side of a yield without a reservation or "
        "re-validation (the PR-4 DIMM slot race, as a rule)"
    ),
    kind="flow",
)(_check_stale_guard)

_register(
    "unchecked-result",
    (
        "PlugResult/UnplugResult/AdmissionResult/RouteRejection/"
        "EvacuationResult/BreakerTransition carry failure as values; "
        "every produced result must have a success field read (or be "
        "propagated) on every CFG path"
    ),
    kind="flow",
)(_check_unchecked_result)

_register(
    "span-hygiene",
    (
        "every Tracer span opened outside a `with` must be close()d or "
        "handed off on every normal exit path (static complement of "
        "the open_spans()==0 runtime gate)"
    ),
    kind="flow",
)(_check_span_hygiene)

_register(
    "no-sim-sleep-side-effect",
    (
        "never mutate shared mm/cluster state in the same statement "
        "chain as a `yield Timeout(...)` result; split the sleep from "
        "the mutation"
    ),
    kind="ast",
)(_check_sim_sleep_side_effect)

_register(
    "no-unbounded-retry",
    (
        "`while True` loops that retry (attempt counters, backoff, "
        "failover) must reference a bounded budget knob — unbounded "
        "retries spin forever against dead hosts"
    ),
    kind="ast",
)(_check_no_unbounded_retry)
