"""Per-function control-flow graphs over the AST, with yield points.

The simulator's concurrency model makes one static property worth a
whole analysis layer: a process runs *atomically between yields*.  Any
invariant checked before a ``yield`` may be stale after it, because
every other process in the calendar queue gets to run in between.  The
flow rules in :mod:`repro.analysis.flow` therefore need to know, for
every function, where the yield points are and which statements can
execute between them — exactly what a control-flow graph expresses.

The graph here is statement-level and deliberately conservative:

* every statement becomes one node (compound statements contribute a
  *head* node holding their test/iterator expression);
* ``if``/``while``/``for``/``try``/``with``/``match`` produce the usual
  branch, back-edge and join structure; ``break``/``continue``/
  ``return``/``raise`` are routed through enclosing ``finally`` bodies
  (cloned per abrupt exit, so path queries stay exact);
* every node inside a ``try`` body gets an edge to each handler head
  (any statement may raise);
* a node is a **yield point** when its statement contains ``yield``,
  ``yield from`` or ``await`` outside any nested function or lambda.

Two distinguished sinks keep path queries honest: :attr:`CFG.exit` is
normal completion (explicit or implicit return) and
:attr:`CFG.raise_exit` is an exception escaping the function.  Rules
that only care about normal control flow (span hygiene) query paths to
``exit``; rules about interleaving (stale guards) traverse everything.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "CFG",
    "CFGNode",
    "FunctionInfo",
    "build_all",
    "build_cfg",
    "contains_yield",
    "contains_yield_in_stmt",
    "iter_functions",
]

FunctionDef = (ast.FunctionDef, ast.AsyncFunctionDef)
_NESTED_SCOPE = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


@dataclass
class CFGNode:
    """One statement (or synthetic entry/exit) in a function's graph."""

    index: int
    kind: str  # "entry" | "exit" | "raise-exit" | "stmt" | "test" | ...
    stmt: Optional[ast.AST]
    line: int
    is_yield: bool = False
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tag = " yield" if self.is_yield else ""
        return f"<CFGNode {self.index} {self.kind} L{self.line}{tag}>"


@dataclass
class CFG:
    """Control-flow graph of one function."""

    func: ast.AST
    name: str
    nodes: List[CFGNode]
    entry: int
    exit: int
    raise_exit: int

    @property
    def yield_nodes(self) -> List[int]:
        """Indices of nodes whose statement suspends the coroutine."""
        return [node.index for node in self.nodes if node.is_yield]

    @property
    def is_coroutine(self) -> bool:
        """Whether this function can suspend (generator or async)."""
        return bool(self.yield_nodes) or isinstance(
            self.func, ast.AsyncFunctionDef
        )

    def stmt_nodes(self) -> Iterator[CFGNode]:
        """Every non-synthetic node, in creation (roughly source) order."""
        for node in self.nodes:
            if node.stmt is not None:
                yield node


@dataclass(frozen=True)
class FunctionInfo:
    """A function definition plus its dotted location inside the module."""

    qualname: str
    node: ast.AST  # ast.FunctionDef | ast.AsyncFunctionDef


def contains_yield(node: ast.AST) -> bool:
    """``yield``/``yield from``/``await`` inside ``node``, ignoring
    nested function/lambda bodies (their suspension is their own)."""
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.Yield, ast.YieldFrom, ast.Await)):
            return True
        for child in ast.iter_child_nodes(current):
            if isinstance(child, _NESTED_SCOPE):
                continue
            stack.append(child)
    return False


def iter_functions(tree: ast.AST) -> Iterator[FunctionInfo]:
    """Every function in ``tree`` (methods and nested defs included)."""

    def visit(node: ast.AST, prefix: str) -> Iterator[FunctionInfo]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, FunctionDef):
                qualname = f"{prefix}{child.name}"
                yield FunctionInfo(qualname, child)
                yield from visit(child, f"{qualname}.<locals>.")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")
            else:
                yield from visit(child, prefix)

    yield from visit(tree, "")


@dataclass
class _LoopFrame:
    head: int
    breaks: List[int]
    finally_depth: int


class _Builder:
    """Recursive-descent CFG construction for one function body."""

    def __init__(self, func: ast.AST, qualname: str):
        self.func = func
        self.qualname = qualname
        self.nodes: List[CFGNode] = []
        self.entry = self._new("entry", None, getattr(func, "lineno", 1))
        self.exit = self._new("exit", None, getattr(func, "lineno", 1))
        self.raise_exit = self._new(
            "raise-exit", None, getattr(func, "lineno", 1)
        )
        self.loops: List[_LoopFrame] = []
        #: innermost-last stack of (handler head indices, finally stmts)
        self.guards: List[Tuple[List[int], List[ast.stmt]]] = []

    # -- plumbing ------------------------------------------------------
    def _new(
        self, kind: str, stmt: Optional[ast.AST], line: int
    ) -> int:
        node = CFGNode(
            index=len(self.nodes),
            kind=kind,
            stmt=stmt,
            line=line,
            is_yield=stmt is not None and contains_yield_in_stmt(stmt),
        )
        self.nodes.append(node)
        return node.index

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.nodes[src].succs:
            self.nodes[src].succs.append(dst)
            self.nodes[dst].preds.append(src)

    def _wire(self, preds: List[int], dst: int) -> None:
        for pred in preds:
            self._edge(pred, dst)

    # -- finally routing -----------------------------------------------
    def _route_abrupt(
        self, preds: List[int], target: int, down_to_depth: int = 0
    ) -> None:
        """Send ``preds`` through clones of enclosing ``finally`` bodies
        (innermost first, down to stack depth ``down_to_depth``) and then
        to ``target``."""
        current = preds
        for _, final_body in reversed(self.guards[down_to_depth:]):
            if not final_body:
                continue
            current = self._build_block(final_body, current)
            if not current:  # the finally itself diverts control
                return
        self._wire(current, target)

    # -- statement dispatch ----------------------------------------------
    def _build_block(
        self, stmts: List[ast.stmt], preds: List[int]
    ) -> List[int]:
        ends = preds
        for stmt in stmts:
            ends = self._build_stmt(stmt, ends)
        return ends

    def _build_stmt(self, stmt: ast.stmt, preds: List[int]) -> List[int]:
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, preds)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._build_loop(stmt, preds)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, preds)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            head = self._new("with", stmt, stmt.lineno)
            self._wire(preds, head)
            return self._build_block(stmt.body, [head])
        if isinstance(stmt, ast.Return):
            node = self._new("return", stmt, stmt.lineno)
            self._wire(preds, node)
            self._route_abrupt([node], self.exit)
            return []
        if isinstance(stmt, ast.Raise):
            node = self._new("raise", stmt, stmt.lineno)
            self._wire(preds, node)
            handlers = self._innermost_handlers()
            if handlers:
                for head in handlers:
                    self._edge(node, head)
            else:
                self._route_abrupt([node], self.raise_exit)
            return []
        if isinstance(stmt, ast.Break):
            node = self._new("break", stmt, stmt.lineno)
            self._wire(preds, node)
            if self.loops:
                frame = self.loops[-1]
                self._collect_break([node], frame)
            return []
        if isinstance(stmt, ast.Continue):
            node = self._new("continue", stmt, stmt.lineno)
            self._wire(preds, node)
            if self.loops:
                frame = self.loops[-1]
                self._route_abrupt(
                    [node], frame.head, down_to_depth=frame.finally_depth
                )
            return []
        if hasattr(ast, "Match") and isinstance(stmt, ast.Match):
            head = self._new("match", stmt, stmt.lineno)
            self._wire(preds, head)
            ends: List[int] = [head]  # no case may match
            for case in stmt.cases:
                ends.extend(self._build_block(case.body, [head]))
            return ends
        # Plain statement (including nested def/class, which get their
        # own CFGs and contribute a single node here).
        node = self._new("stmt", stmt, stmt.lineno)
        self._wire(preds, node)
        return [node]

    def _collect_break(self, preds: List[int], frame: _LoopFrame) -> None:
        """Route a break through finallys inside the loop, recording the
        final predecessors for wiring to the loop exit."""
        current = preds
        for _, final_body in reversed(self.guards[frame.finally_depth:]):
            if not final_body:
                continue
            current = self._build_block(final_body, current)
            if not current:
                return
        frame.breaks.extend(current)

    def _innermost_handlers(self) -> List[int]:
        for handlers, _ in reversed(self.guards):
            if handlers:
                return handlers
        return []

    # -- compound statements ---------------------------------------------
    def _build_if(self, stmt: ast.If, preds: List[int]) -> List[int]:
        head = self._new("test", stmt, stmt.lineno)
        self._wire(preds, head)
        body_ends = self._build_block(stmt.body, [head])
        if stmt.orelse:
            else_ends = self._build_block(stmt.orelse, [head])
        else:
            else_ends = [head]
        return body_ends + else_ends

    def _build_loop(self, stmt: ast.stmt, preds: List[int]) -> List[int]:
        head = self._new("loop", stmt, stmt.lineno)
        self._wire(preds, head)
        frame = _LoopFrame(
            head=head, breaks=[], finally_depth=len(self.guards)
        )
        self.loops.append(frame)
        body_ends = self._build_block(stmt.body, [head])
        self.loops.pop()
        self._wire(body_ends, head)  # back edge
        orelse = getattr(stmt, "orelse", [])
        if orelse:
            exit_preds = self._build_block(orelse, [head])
        else:
            exit_preds = [head]
        return exit_preds + frame.breaks

    def _build_try(self, stmt: ast.Try, preds: List[int]) -> List[int]:
        handler_heads = [
            self._new("except", handler, handler.lineno)
            for handler in stmt.handlers
        ]
        self.guards.append((handler_heads, stmt.finalbody))
        first_body_node = len(self.nodes)
        body_ends = self._build_block(stmt.body, preds)
        # Any statement in the body may raise into any handler.
        for index in range(first_body_node, len(self.nodes)):
            for head in handler_heads:
                if index != head:
                    self._edge(index, head)
        self.guards.pop()

        # Handlers and the else block still run under the finally (but
        # not under these handlers).
        self.guards.append(([], stmt.finalbody))
        handler_ends: List[int] = []
        for handler, head in zip(stmt.handlers, handler_heads):
            handler_ends.extend(self._build_block(handler.body, [head]))
        if stmt.orelse:
            body_ends = self._build_block(stmt.orelse, body_ends)
        self.guards.pop()

        normal = body_ends + handler_ends
        if stmt.finalbody:
            return self._build_block(stmt.finalbody, normal)
        return normal

    # -- driver ----------------------------------------------------------
    def build(self) -> CFG:
        body = list(getattr(self.func, "body", []))
        ends = self._build_block(body, [self.entry])
        self._wire(ends, self.exit)  # implicit return
        return CFG(
            func=self.func,
            name=self.qualname,
            nodes=self.nodes,
            entry=self.entry,
            exit=self.exit,
            raise_exit=self.raise_exit,
        )


def contains_yield_in_stmt(stmt: ast.AST) -> bool:
    """Yield detection for one statement *head* (compound statements
    only look at their test/iterator expression, not their body)."""
    if isinstance(stmt, ast.If) or isinstance(stmt, ast.While):
        return contains_yield(stmt.test)
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return isinstance(stmt, ast.AsyncFor) or contains_yield(stmt.iter)
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return isinstance(stmt, ast.AsyncWith) or any(
            contains_yield(item.context_expr) for item in stmt.items
        )
    if hasattr(ast, "Match") and isinstance(stmt, ast.Match):
        return contains_yield(stmt.subject)
    if isinstance(stmt, ast.Try):
        return False
    if isinstance(stmt, ast.ExceptHandler):
        return False
    if isinstance(stmt, (*FunctionDef, ast.ClassDef)):
        # A nested definition suspends its *own* body, not ours.
        return False
    return contains_yield(stmt)


def build_cfg(func: ast.AST, qualname: Optional[str] = None) -> CFG:
    """Build the control-flow graph of one function definition."""
    name = qualname or getattr(func, "name", "<function>")
    return _Builder(func, name).build()


def build_all(tree: ast.AST) -> Dict[str, CFG]:
    """CFGs for every function in a module, keyed by qualified name."""
    graphs: Dict[str, CFG] = {}
    for info in iter_functions(tree):
        graphs[info.qualname] = build_cfg(info.node, info.qualname)
    return graphs
