"""Recovery-path accounting: what the datapath did when it failed.

Every recovery action taken by the fault-handling machinery — a retried
block offline, a quarantined block, a deferred reclamation, degradation
to static mode — is recorded as a :class:`RecoveryEvent` in the VM's
:class:`RecoveryLog`.  The log is the metrics surface the chaos
experiment reads: recovery *latency* (detection to resolution) and the
distribution of paths taken (recovered vs. degraded) per fault rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = [
    "RecoveryEvent",
    "RecoveryLog",
    "RECOVERED_PATHS",
    "DEGRADED_PATHS",
]

#: Paths where the operation eventually succeeded (the fault was masked).
RECOVERED_PATHS = frozenset(
    {"retried", "absorbed", "serialized", "healed", "deferred", "deferred-done"}
)
#: Paths where the system gave up something (graceful degradation).
DEGRADED_PATHS = frozenset(
    {
        "quarantined",
        "partial-unplug",
        "static-fallback",
        "plug-shortfall",
        "dropped",
        "oom-failfast",
        "invocation-failed",
    }
)


@dataclass(frozen=True)
class RecoveryEvent:
    """One handled failure: where it happened and how it was resolved."""

    #: Failure site (a :mod:`repro.faults.sites` name or an internal
    #: ``driver.unplug.*`` / ``agent.*`` label for natural failures).
    site: str
    #: Recovery path taken (see :data:`RECOVERED_PATHS` /
    #: :data:`DEGRADED_PATHS`).
    path: str
    #: When the failure was first detected.
    detect_ns: int
    #: When the recovery action completed (success, quarantine, ...).
    resolve_ns: int
    #: Attempts spent (1 = first try, no retries).
    attempts: int = 1
    block_index: Optional[int] = None
    partition_id: Optional[int] = None

    @property
    def latency_ns(self) -> int:
        """Detection-to-resolution latency."""
        return self.resolve_ns - self.detect_ns

    @property
    def latency_ms(self) -> float:
        return self.latency_ns / 1e6

    @property
    def recovered(self) -> bool:
        """Whether the operation ultimately succeeded."""
        return self.path in RECOVERED_PATHS


class RecoveryLog:
    """Append-only log of recovery events for one VM."""

    def __init__(self) -> None:
        self.events: List[RecoveryEvent] = []

    def record(
        self,
        site: str,
        path: str,
        detect_ns: int,
        resolve_ns: int,
        attempts: int = 1,
        block_index: Optional[int] = None,
        partition_id: Optional[int] = None,
    ) -> RecoveryEvent:
        """Append one event; returns it for convenience."""
        event = RecoveryEvent(
            site=site,
            path=path,
            detect_ns=detect_ns,
            resolve_ns=resolve_ns,
            attempts=attempts,
            block_index=block_index,
            partition_id=partition_id,
        )
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def count(self, path: Optional[str] = None) -> int:
        """Events recorded (optionally restricted to one path)."""
        if path is None:
            return len(self.events)
        return sum(1 for event in self.events if event.path == path)

    def by_path(self) -> Dict[str, int]:
        """Path → event count, in first-seen order."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.path] = counts.get(event.path, 0) + 1
        return counts

    def recovered_count(self) -> int:
        """Events whose operation ultimately succeeded."""
        return sum(1 for event in self.events if event.recovered)

    def degraded_count(self) -> int:
        """Events where the system degraded instead of recovering."""
        return sum(1 for event in self.events if not event.recovered)

    def latencies_ms(self, path: Optional[str] = None) -> List[float]:
        """Recovery latencies in ms (optionally for one path)."""
        return [
            event.latency_ms
            for event in self.events
            if path is None or event.path == path
        ]

    def latency_p99_ms(self, path: Optional[str] = None) -> float:
        """P99 recovery latency in ms (0 when no events)."""
        # Imported here: repro.metrics pulls in the faas layer, which
        # sits above this module in the import graph.
        from repro.metrics.latency import percentile

        latencies = self.latencies_ms(path)
        if not latencies:
            return 0.0
        return percentile(latencies, 99.0)

    def __repr__(self) -> str:
        return f"<RecoveryLog events={len(self.events)} paths={self.by_path()}>"
