"""Recovery-path accounting: what the datapath did when it failed.

Every recovery action taken by the fault-handling machinery — a retried
block offline, a quarantined block, a deferred reclamation, degradation
to static mode — is recorded as a :class:`RecoveryEvent` in the VM's
:class:`RecoveryLog`.  The log is the metrics surface the chaos
experiment reads: recovery *latency* (detection to resolution) and the
distribution of paths taken (recovered vs. degraded) per fault rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.obs.context import NO_SCOPE, ObsScope
from repro.obs.span import NULL_SPAN, SpanLike

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.span import Span

__all__ = [
    "RecoveryEvent",
    "RecoveryLog",
    "RECOVERED_PATHS",
    "DEGRADED_PATHS",
    "FAILED_OVER_PATHS",
]

#: Paths where the operation eventually succeeded (the fault was masked).
RECOVERED_PATHS = frozenset(
    {
        "retried",
        "absorbed",
        "serialized",
        "healed",
        "deferred",
        "deferred-done",
        "force-recycled",
    }
)
#: Paths where the system gave up something (graceful degradation).
DEGRADED_PATHS = frozenset(
    {
        "quarantined",
        "partial-unplug",
        "static-fallback",
        "plug-shortfall",
        "dropped",
        "oom-failfast",
        "invocation-failed",
        "deadline",
        "link-down",
        "evacuation-rejected",
    }
)
#: Paths where the work survived by *moving* — to a sibling VM (router
#: failover) or to a surviving host (evacuation/re-provisioning) — and
#: so paid a relocation cost rather than completing in place.
FAILED_OVER_PATHS = frozenset(
    {"failed-over", "rerouted", "evacuated", "reprovisioned"}
)


@dataclass(frozen=True)
class RecoveryEvent:
    """One handled failure: where it happened and how it was resolved."""

    #: Failure site (a :mod:`repro.faults.sites` name or an internal
    #: ``driver.unplug.*`` / ``agent.*`` label for natural failures).
    site: str
    #: Recovery path taken (see :data:`RECOVERED_PATHS` /
    #: :data:`DEGRADED_PATHS`).
    path: str
    #: When the failure was first detected.
    detect_ns: int
    #: When the recovery action completed (success, quarantine, ...).
    resolve_ns: int
    #: Attempts spent (1 = first try, no retries).
    attempts: int = 1
    block_index: Optional[int] = None
    partition_id: Optional[int] = None

    @property
    def latency_ns(self) -> int:
        """Detection-to-resolution latency."""
        return self.resolve_ns - self.detect_ns

    @property
    def latency_ms(self) -> float:
        return self.latency_ns / 1e6

    @property
    def recovered(self) -> bool:
        """Whether the operation ultimately succeeded."""
        return self.path in RECOVERED_PATHS

    @property
    def failed_over(self) -> bool:
        """Whether the work survived by moving elsewhere."""
        return self.path in FAILED_OVER_PATHS


class RecoveryLog:
    """Append-only log of recovery events for one VM.

    With tracing enabled (an ``obs`` scope whose context is live) the
    log re-expresses itself as a span consumer: :meth:`record` emits a
    ``recovery`` span with explicit detect/resolve timestamps, and the
    log — registered on the fleet tracer at construction — rebuilds the
    identical :class:`RecoveryEvent` from the closed span.  Untraced
    logs append directly; either way ``events`` is byte-identical.
    """

    def __init__(self, obs: Optional[ObsScope] = None) -> None:
        self.events: List[RecoveryEvent] = []
        self._obs = obs if obs is not None else NO_SCOPE
        #: Spans carry the scope's ``vm`` label; the consumer filters on
        #: it because the fleet tracer is shared by every VM.
        self._vm_key = (
            self._obs.attrs.get("vm") if self._obs.enabled else None
        )
        if self._obs.enabled:
            self._obs.context.tracer.add_consumer(self.consume_span)

    def record(
        self,
        site: str,
        path: str,
        detect_ns: int,
        resolve_ns: int,
        attempts: int = 1,
        block_index: Optional[int] = None,
        partition_id: Optional[int] = None,
        parent: SpanLike = NULL_SPAN,
    ) -> RecoveryEvent:
        """Append one event; returns it for convenience."""
        self._obs.inc("recovery_events_total", site=site, path=path)
        if self._obs.enabled:
            span = self._obs.span(
                "recovery",
                parent=parent,
                start_ns=detect_ns,
                site=site,
                path=path,
                attempts=attempts,
                block_index=block_index,
                partition_id=partition_id,
            )
            span.close(end_ns=resolve_ns)
            return self.events[-1]
        event = RecoveryEvent(
            site=site,
            path=path,
            detect_ns=detect_ns,
            resolve_ns=resolve_ns,
            attempts=attempts,
            block_index=block_index,
            partition_id=partition_id,
        )
        self.events.append(event)
        return event

    def consume_span(self, span: "Span") -> None:
        """Rebuild a :class:`RecoveryEvent` from a closed recovery span."""
        if span.name != "recovery":
            return
        if self._vm_key is not None and span.attrs.get("vm") != self._vm_key:
            return
        block_index = span.attrs.get("block_index")
        partition_id = span.attrs.get("partition_id")
        self.events.append(
            RecoveryEvent(
                site=str(span.attrs.get("site", "")),
                path=str(span.attrs.get("path", "")),
                detect_ns=span.start_ns,
                resolve_ns=(
                    span.end_ns if span.end_ns is not None else span.start_ns
                ),
                attempts=int(span.attrs.get("attempts", 1)),  # type: ignore[arg-type]
                block_index=(
                    int(block_index) if block_index is not None else None  # type: ignore[arg-type]
                ),
                partition_id=(
                    int(partition_id) if partition_id is not None else None  # type: ignore[arg-type]
                ),
            )
        )

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def count(self, path: Optional[str] = None) -> int:
        """Events recorded (optionally restricted to one path)."""
        if path is None:
            return len(self.events)
        return sum(1 for event in self.events if event.path == path)

    def by_path(self) -> Dict[str, int]:
        """Path → event count, in first-seen order."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.path] = counts.get(event.path, 0) + 1
        return counts

    def recovered_count(self) -> int:
        """Events whose operation ultimately succeeded."""
        return sum(1 for event in self.events if event.recovered)

    def failed_over_count(self) -> int:
        """Events where the work survived by moving elsewhere."""
        return sum(1 for event in self.events if event.failed_over)

    def degraded_count(self) -> int:
        """Events where the system degraded instead of recovering."""
        return sum(
            1
            for event in self.events
            if not event.recovered and not event.failed_over
        )

    def latencies_ms(self, path: Optional[str] = None) -> List[float]:
        """Recovery latencies in ms (optionally for one path)."""
        return [
            event.latency_ms
            for event in self.events
            if path is None or event.path == path
        ]

    def latency_p99_ms(self, path: Optional[str] = None) -> float:
        """P99 recovery latency in ms (0 when no events)."""
        # Imported here: repro.metrics pulls in the faas layer, which
        # sits above this module in the import graph.
        from repro.metrics.latency import percentile

        latencies = self.latencies_ms(path)
        if not latencies:
            return 0.0
        return percentile(latencies, 99.0)

    def mttr_ms(self, site: Optional[str] = None) -> float:
        """Mean time-to-recovery in ms (optionally for one site).

        Detection-to-resolution, averaged over every event at the site
        (0 when no events) — the fleet-availability headline the
        ``cluster-chaos`` sweep reports per fault rate.
        """
        latencies = [
            event.latency_ms
            for event in self.events
            if site is None or event.site == site
        ]
        if not latencies:
            return 0.0
        return sum(latencies) / len(latencies)

    def mttr_by_site(self) -> Dict[str, float]:
        """Site → mean time-to-recovery in ms, sorted by site name."""
        sites = sorted({event.site for event in self.events})
        return {site: self.mttr_ms(site) for site in sites}

    def summary(self) -> Dict[str, Dict[str, object]]:
        """Per-site rollup: counts by outcome category plus MTTR.

        Keys are site names in sorted order; each value carries
        ``events``, ``recovered``, ``degraded``, ``failed_over`` counts
        and ``mttr_ms``.  Rendered by the ``chaos`` and
        ``cluster-chaos`` reports.
        """
        rollup: Dict[str, Dict[str, object]] = {}
        for site in sorted({event.site for event in self.events}):
            at_site = [event for event in self.events if event.site == site]
            rollup[site] = {
                "events": len(at_site),
                "recovered": sum(1 for e in at_site if e.recovered),
                "failed_over": sum(1 for e in at_site if e.failed_over),
                "degraded": sum(
                    1 for e in at_site if not e.recovered and not e.failed_over
                ),
                "mttr_ms": self.mttr_ms(site),
            }
        return rollup

    def __repr__(self) -> str:
        return f"<RecoveryLog events={len(self.events)} paths={self.by_path()}>"
