"""Deterministic fault injection + recovery policies for the hotplug
datapath.

The package has three parts:

* :mod:`repro.faults.sites` — the named injection sites (host backend,
  guest driver, agent control plane);
* :mod:`repro.faults.injector` — the seed-driven :class:`FaultInjector`
  plane (per-site RNG streams, fire/resolve accounting);
* :mod:`repro.faults.policy` — :class:`RetryPolicy` (driver retries,
  backoff, quarantine) and :class:`ResiliencePolicy` (agent plug
  retries, deferred reclamation, degradation to static mode).

See ``docs/faults.md`` for the full injection-site and recovery-path
reference, and ``experiments/chaos.py`` for the fault-rate sweep built
on top.
"""

from repro.faults.injector import (
    NO_FAULTS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)
from repro.faults.policy import (
    NO_FAILOVER,
    NO_RESILIENCE,
    NO_RETRY,
    ResiliencePolicy,
    RetryBudget,
    RetryPolicy,
)
from repro.faults.sites import (
    AGENT_RECYCLE_RACE,
    AGENT_SITES,
    AGENT_SPAWN_FAIL,
    AGENT_SPAWN_OOM,
    AGENT_WEDGE,
    ALL_SITES,
    DATAPATH_SITES,
    DEVICE_PLUG_NACK,
    DEVICE_PLUG_PARTIAL,
    DEVICE_RESPONSE_DELAY,
    DEVICE_SITES,
    DOMAIN_SITES,
    DRIVER_BLOCK_TIMEOUT,
    DRIVER_MIGRATE_FAIL,
    DRIVER_OFFLINE_UNMOVABLE,
    DRIVER_SITES,
    HOST_CRASH,
    HOST_PRESSURE_SPIKE,
    ROUTER_LINK_DOWN,
    VM_OOM_KILL,
)

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "InjectedFault",
    "FaultInjector",
    "NO_FAULTS",
    "RetryPolicy",
    "ResiliencePolicy",
    "RetryBudget",
    "NO_RETRY",
    "NO_RESILIENCE",
    "NO_FAILOVER",
    "DEVICE_PLUG_NACK",
    "DEVICE_PLUG_PARTIAL",
    "DEVICE_RESPONSE_DELAY",
    "DRIVER_OFFLINE_UNMOVABLE",
    "DRIVER_MIGRATE_FAIL",
    "DRIVER_BLOCK_TIMEOUT",
    "AGENT_SPAWN_FAIL",
    "AGENT_SPAWN_OOM",
    "AGENT_RECYCLE_RACE",
    "HOST_CRASH",
    "HOST_PRESSURE_SPIKE",
    "VM_OOM_KILL",
    "AGENT_WEDGE",
    "ROUTER_LINK_DOWN",
    "ALL_SITES",
    "DATAPATH_SITES",
    "DEVICE_SITES",
    "DRIVER_SITES",
    "AGENT_SITES",
    "DOMAIN_SITES",
]
