"""Fleet-level failure domains: the scheduler that breaks whole hosts.

The datapath sites in :mod:`repro.faults.sites` fire *inside* one VM's
plug/unplug/spawn machinery — each VM owns a private
:class:`~repro.faults.injector.FaultInjector` and trips its own faults.
Domain faults are different: a host crash or a router link loss is an
event *about* the fleet, not about any one operation, so nobody on the
datapath ever reaches a natural injection opportunity for it.

:class:`DomainScheduler` supplies those opportunities.  It is a plain
simulation process that ticks on a fixed cadence; every tick is one
injection opportunity per armed domain site, drawn through the same
seeded :class:`~repro.faults.injector.FaultInjector` plane (so domain
chaos composes with datapath chaos without perturbing its streams).
When a site fires, the scheduler picks a victim — a live host or a live
VM — from a *separate* RNG stream (``faults/domains/victims``) and hands
the fault to a :class:`DomainTarget` (in practice the
:class:`~repro.cluster.failover.FailoverCoordinator`), which owns the
actual crash/evacuate/reroute mechanics and must eventually resolve the
fault.

Determinism: the per-site firing streams and the victim stream are all
derived from the run seed, the tick cadence is fixed, and victims are
chosen by index into a sorted snapshot of the live population — two runs
at the same seed kill the same host at the same nanosecond.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol

from repro.errors import ConfigError
from repro.faults.injector import FaultInjector, FaultPlan, FaultSpec, InjectedFault
from repro.faults.sites import (
    AGENT_WEDGE,
    DOMAIN_SITES,
    HOST_CRASH,
    HOST_PRESSURE_SPIKE,
    ROUTER_LINK_DOWN,
    VM_OOM_KILL,
)
from repro.sim.engine import Process, Simulator, Timeout
from repro.sim.rng import make_rng

__all__ = [
    "DomainTarget",
    "DomainScheduler",
    "domain_plan",
    "DEFAULT_DOMAIN_CAPS",
]


#: Per-site ``max_fires`` caps for :func:`domain_plan`.  A chaos run that
#: crashed hosts without bound would converge on an empty fleet and tell
#: us nothing; capping each domain site keeps the storm survivable while
#: still exercising every recovery path.  ``host.crash`` is capped at 1
#: so a 3-host fleet always retains a quorum of survivors to evacuate
#: onto.
DEFAULT_DOMAIN_CAPS: Dict[str, int] = {
    HOST_CRASH: 1,
    HOST_PRESSURE_SPIKE: 2,
    VM_OOM_KILL: 2,
    AGENT_WEDGE: 1,
    ROUTER_LINK_DOWN: 2,
}


def domain_plan(
    probability: float,
    caps: Optional[Dict[str, int]] = None,
    sites: tuple = DOMAIN_SITES,
) -> FaultPlan:
    """A domain-site plan at a shared per-tick probability.

    ``caps`` overrides :data:`DEFAULT_DOMAIN_CAPS` per site; sites absent
    from the merged cap table are uncapped.
    """
    merged = dict(DEFAULT_DOMAIN_CAPS)
    if caps:
        merged.update(caps)
    return FaultPlan(
        tuple(
            FaultSpec(site, probability=probability, max_fires=merged.get(site))
            for site in sites
        )
    )


class DomainTarget(Protocol):
    """What the scheduler breaks: the fleet-facing recovery surface.

    Implemented by :class:`~repro.cluster.failover.FailoverCoordinator`.
    Every handler receives the fired :class:`InjectedFault` and is
    responsible for eventually resolving it through the injector (the
    ``unresolved() == 0`` completeness gate covers domain faults too).
    """

    def live_hosts(self) -> List[int]:
        """Indices of hosts currently up (crash/pressure victims)."""
        ...

    def live_vms(self) -> List[str]:
        """Names of VMs currently serving (OOM/wedge/link victims)."""
        ...

    def crash_host(self, host_index: int, fault: InjectedFault) -> None: ...

    def pressure_spike(self, host_index: int, fault: InjectedFault) -> None: ...

    def oom_kill(self, vm_name: str, fault: InjectedFault) -> None: ...

    def wedge_agent(self, vm_name: str, fault: InjectedFault) -> None: ...

    def link_down(self, vm_name: str, fault: InjectedFault) -> None: ...


class DomainScheduler:
    """Tick-driven injection opportunities for fleet failure domains.

    Each tick offers every armed domain site one chance to fire; a fired
    fault picks its victim from the live population and is dispatched to
    the :class:`DomainTarget`.  The process is bounded by ``until_ns``
    so draining the event queue always terminates.
    """

    def __init__(
        self,
        sim: Simulator,
        injector: FaultInjector,
        target: DomainTarget,
        tick_ns: int,
        until_ns: int,
        seed: int = 0,
    ):
        if tick_ns <= 0:
            raise ConfigError(f"tick_ns must be positive, got {tick_ns}")
        if until_ns < 0:
            raise ConfigError(f"until_ns must be >= 0, got {until_ns}")
        self.sim = sim
        self.injector = injector
        self.target = target
        self.tick_ns = int(tick_ns)
        self.until_ns = int(until_ns)
        #: Victim selection draws from its own stream so adding a domain
        #: site never shifts which host an already-armed site picks.
        self._victims = make_rng(seed, "faults/domains/victims")
        self._stopped = False
        self.process: Optional[Process] = None
        #: Faults that fired with no live victim left (resolved
        #: ``absorbed`` on the spot); kept for report visibility.
        self.absorbed = 0

    def start(self) -> Process:
        """Spawn the tick process (idempotent)."""
        if self.process is None:
            self.injector.bind_sim(self.sim)
            self.process = self.sim.spawn(self._run(), name="domain-scheduler")
        return self.process

    def stop(self) -> None:
        """Stop ticking after the current tick (storm wind-down)."""
        self._stopped = True

    def _run(self):
        while not self._stopped and self.sim.now + self.tick_ns <= self.until_ns:
            yield Timeout(self.tick_ns)
            if self._stopped:
                break
            self._tick()
        return self.injector.count()

    def _tick(self) -> None:
        for site in DOMAIN_SITES:
            fault = self.injector.fire(site, tick_ns=self.sim.now)
            if fault is None:
                continue
            self._dispatch(site, fault)

    def _pick(self, population: List) -> Optional[object]:
        if not population:
            return None
        return population[self._victims.randrange(len(population))]

    def _dispatch(self, site: str, fault: InjectedFault) -> None:
        if site in (HOST_CRASH, HOST_PRESSURE_SPIKE):
            victim = self._pick(sorted(self.target.live_hosts()))
            if victim is None:
                self._absorb(fault)
                return
            fault.context["host"] = victim
            if site == HOST_CRASH:
                self.target.crash_host(victim, fault)
            else:
                self.target.pressure_spike(victim, fault)
            return
        victim = self._pick(sorted(self.target.live_vms()))
        if victim is None:
            self._absorb(fault)
            return
        fault.context["vm"] = victim
        if site == VM_OOM_KILL:
            self.target.oom_kill(victim, fault)
        elif site == AGENT_WEDGE:
            self.target.wedge_agent(victim, fault)
        else:
            self.target.link_down(victim, fault)

    def _absorb(self, fault: InjectedFault) -> None:
        # Fired with nobody left to break (every host already down, or
        # no VM serving): account for it immediately so the storm still
        # passes the completeness gate.
        self.absorbed += 1
        self.injector.resolve(fault, "absorbed")

    def __repr__(self) -> str:
        state = "stopped" if self._stopped else "ticking"
        return f"<DomainScheduler {state} tick={self.tick_ns} until={self.until_ns}>"
