"""Named fault-injection sites across the hotplug datapath.

Each constant names one place where the simulator can deterministically
inject a failure.  Sites are grouped by layer:

* **device** (:mod:`repro.virtio.device`, the VMM side): the backend
  NACKs a plug outright, satisfies it only partially, or delays its
  response to a resize request;
* **driver** (:mod:`repro.virtio.driver`, the guest side): offlining a
  block hits unmovable pages, migrating its occupants fails, or the
  per-block operation times out;
* **agent** (:mod:`repro.faas.agent`, the control plane): a container
  spawn fails, an elastic scale-up runs out of memory, or the recycler
  races an in-flight unplug and computes its shrink target from stale
  device state.

Site names double as RNG stream names (``faults/<site>``), so enabling
one site never perturbs the draws of another — the property that makes
chaos runs bit-reproducible and composable.
"""

from __future__ import annotations

__all__ = [
    "DEVICE_PLUG_NACK",
    "DEVICE_PLUG_PARTIAL",
    "DEVICE_RESPONSE_DELAY",
    "DRIVER_OFFLINE_UNMOVABLE",
    "DRIVER_MIGRATE_FAIL",
    "DRIVER_BLOCK_TIMEOUT",
    "AGENT_SPAWN_FAIL",
    "AGENT_SPAWN_OOM",
    "AGENT_RECYCLE_RACE",
    "ALL_SITES",
    "DEVICE_SITES",
    "DRIVER_SITES",
    "AGENT_SITES",
]

#: The host backend refuses a plug request (no memory granted).
DEVICE_PLUG_NACK = "device.plug.nack"
#: The host backend grants only part of a plug request.
DEVICE_PLUG_PARTIAL = "device.plug.partial"
#: The host backend delays its response to a resize request.
DEVICE_RESPONSE_DELAY = "device.response.delay"

#: Offlining a block fails on (transiently) unmovable pages.
DRIVER_OFFLINE_UNMOVABLE = "driver.offline.unmovable"
#: Migrating a block's occupants out fails mid-unplug.
DRIVER_MIGRATE_FAIL = "driver.migrate.fail"
#: The per-block offline operation exceeds the driver's timeout.
DRIVER_BLOCK_TIMEOUT = "driver.block.timeout"

#: The container runtime fails to spawn an instance.
AGENT_SPAWN_FAIL = "agent.spawn.fail"
#: An elastic scale-up OOMs before the instance is usable.
AGENT_SPAWN_OOM = "agent.spawn.oom"
#: The recycler sizes its unplug from stale state, racing an in-flight
#: unplug (the classic check-then-act race).
AGENT_RECYCLE_RACE = "agent.recycle.race"

DEVICE_SITES = (DEVICE_PLUG_NACK, DEVICE_PLUG_PARTIAL, DEVICE_RESPONSE_DELAY)
DRIVER_SITES = (DRIVER_OFFLINE_UNMOVABLE, DRIVER_MIGRATE_FAIL, DRIVER_BLOCK_TIMEOUT)
AGENT_SITES = (AGENT_SPAWN_FAIL, AGENT_SPAWN_OOM, AGENT_RECYCLE_RACE)

#: Every known injection site (the universe :class:`FaultSpec` validates
#: against).
ALL_SITES = DEVICE_SITES + DRIVER_SITES + AGENT_SITES
