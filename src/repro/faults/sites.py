"""Named fault-injection sites across the hotplug datapath.

Each constant names one place where the simulator can deterministically
inject a failure.  Sites are grouped by layer:

* **device** (:mod:`repro.virtio.device`, the VMM side): the backend
  NACKs a plug outright, satisfies it only partially, or delays its
  response to a resize request;
* **driver** (:mod:`repro.virtio.driver`, the guest side): offlining a
  block hits unmovable pages, migrating its occupants fails, or the
  per-block operation times out;
* **agent** (:mod:`repro.faas.agent`, the control plane): a container
  spawn fails, an elastic scale-up runs out of memory, or the recycler
  races an in-flight unplug and computes its shrink target from stale
  device state;
* **domain** (:mod:`repro.faults.domains`, the fleet): a whole host
  crashes, a host degrades under an external memory-pressure spike, the
  host OOM killer takes out one VM, an agent's recycler wedges and stops
  heartbeating, or the router loses its link to a host.

The first three groups are the *datapath* sites (fired by one VM's
device/driver/agent stack); the domain group is fired by the fleet-level
:class:`~repro.faults.domains.DomainScheduler` against whole hosts and
VMs.  Site names double as RNG stream names (``faults/<site>``), so
enabling one site never perturbs the draws of another — the property
that makes chaos runs bit-reproducible and composable.
"""

from __future__ import annotations

__all__ = [
    "DEVICE_PLUG_NACK",
    "DEVICE_PLUG_PARTIAL",
    "DEVICE_RESPONSE_DELAY",
    "DRIVER_OFFLINE_UNMOVABLE",
    "DRIVER_MIGRATE_FAIL",
    "DRIVER_BLOCK_TIMEOUT",
    "AGENT_SPAWN_FAIL",
    "AGENT_SPAWN_OOM",
    "AGENT_RECYCLE_RACE",
    "HOST_CRASH",
    "HOST_PRESSURE_SPIKE",
    "VM_OOM_KILL",
    "AGENT_WEDGE",
    "ROUTER_LINK_DOWN",
    "ALL_SITES",
    "DATAPATH_SITES",
    "DEVICE_SITES",
    "DRIVER_SITES",
    "AGENT_SITES",
    "DOMAIN_SITES",
]

#: The host backend refuses a plug request (no memory granted).
DEVICE_PLUG_NACK = "device.plug.nack"
#: The host backend grants only part of a plug request.
DEVICE_PLUG_PARTIAL = "device.plug.partial"
#: The host backend delays its response to a resize request.
DEVICE_RESPONSE_DELAY = "device.response.delay"

#: Offlining a block fails on (transiently) unmovable pages.
DRIVER_OFFLINE_UNMOVABLE = "driver.offline.unmovable"
#: Migrating a block's occupants out fails mid-unplug.
DRIVER_MIGRATE_FAIL = "driver.migrate.fail"
#: The per-block offline operation exceeds the driver's timeout.
DRIVER_BLOCK_TIMEOUT = "driver.block.timeout"

#: The container runtime fails to spawn an instance.
AGENT_SPAWN_FAIL = "agent.spawn.fail"
#: An elastic scale-up OOMs before the instance is usable.
AGENT_SPAWN_OOM = "agent.spawn.oom"
#: The recycler sizes its unplug from stale state, racing an in-flight
#: unplug (the classic check-then-act race).
AGENT_RECYCLE_RACE = "agent.recycle.race"

#: An entire host dies: every resident VM is killed mid-flight and the
#: fleet must evacuate its workload through admission on the survivors.
HOST_CRASH = "host.crash"
#: An external tenant's memory spike degrades a host, shrinking the
#: headroom the arbiter thought it had.
HOST_PRESSURE_SPIKE = "host.pressure.spike"
#: The host OOM killer takes out a single VM (its host survives).
VM_OOM_KILL = "vm.oom.kill"
#: An agent's recycler wedges — it stops heartbeating but the VM keeps
#: serving, so only the watchdog notices.
AGENT_WEDGE = "agent.wedge"
#: The router loses its link to one VM; invocations must fail over to
#: siblings until the link heals.
ROUTER_LINK_DOWN = "router.link.down"

DEVICE_SITES = (DEVICE_PLUG_NACK, DEVICE_PLUG_PARTIAL, DEVICE_RESPONSE_DELAY)
DRIVER_SITES = (DRIVER_OFFLINE_UNMOVABLE, DRIVER_MIGRATE_FAIL, DRIVER_BLOCK_TIMEOUT)
AGENT_SITES = (AGENT_SPAWN_FAIL, AGENT_SPAWN_OOM, AGENT_RECYCLE_RACE)
DOMAIN_SITES = (
    HOST_CRASH,
    HOST_PRESSURE_SPIKE,
    VM_OOM_KILL,
    AGENT_WEDGE,
    ROUTER_LINK_DOWN,
)

#: The per-VM datapath sites (what a single VM's injector arms).
DATAPATH_SITES = DEVICE_SITES + DRIVER_SITES + AGENT_SITES

#: Every known injection site (the universe :class:`FaultSpec` validates
#: against).
ALL_SITES = DATAPATH_SITES + DOMAIN_SITES
