"""Retry, backoff, quarantine and degradation policies.

:class:`RetryPolicy` governs the guest driver's per-block recovery on
the unplug path (retry with exponential backoff, then give up — and
optionally quarantine blocks that keep failing across requests).

:class:`ResiliencePolicy` bundles the agent-level knobs on top: plug
retries, the deferred-reclamation queue for partial unplugs, and the
threshold at which a persistently unavailable backend degrades the VM to
static (no-elastic) mode.

Both default to **off** (zero retries, no quarantine, no degradation),
which reproduces the pre-fault-plane behaviour exactly: a failed block
is simply skipped (virtio-mem's partial-unplug semantics) and nothing
adds timeouts or RNG draws to existing runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.units import MS

__all__ = [
    "RetryPolicy",
    "ResiliencePolicy",
    "RetryBudget",
    "NO_RETRY",
    "NO_RESILIENCE",
    "NO_FAILOVER",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Driver-side per-block retry/timeout/backoff policy."""

    #: Retries after the first failed attempt (0 = fail immediately,
    #: preserving stock virtio-mem partial-unplug behaviour).
    max_retries: int = 0
    #: Backoff before the first retry; doubles (``backoff_multiplier``)
    #: per further retry, capped at ``max_backoff_ns``.
    base_backoff_ns: int = 1 * MS
    backoff_multiplier: float = 2.0
    max_backoff_ns: int = 64 * MS
    #: Simulated duration of a timed-out per-block operation (the time
    #: lost before the driver gives up on a hung offline).
    block_timeout_ns: int = 5 * MS
    #: Quarantine a block once this many *requests* exhausted their
    #: retries on it (0 = never quarantine).
    quarantine_after: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_backoff_ns <= 0 or self.max_backoff_ns <= 0:
            raise ConfigError("backoff durations must be positive")
        if self.backoff_multiplier < 1.0:
            raise ConfigError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if self.block_timeout_ns <= 0:
            raise ConfigError("block_timeout_ns must be positive")
        if self.quarantine_after < 0:
            raise ConfigError(
                f"quarantine_after must be >= 0, got {self.quarantine_after}"
            )

    def backoff_ns(self, attempt: int) -> int:
        """Backoff before retry ``attempt`` (1-based), capped."""
        if attempt < 1:
            raise ConfigError(f"attempt must be >= 1, got {attempt}")
        backoff = self.base_backoff_ns * self.backoff_multiplier ** (attempt - 1)
        return min(self.max_backoff_ns, int(backoff))


#: The inert default: fail fast, no quarantine.
NO_RETRY = RetryPolicy()


@dataclass(frozen=True)
class ResiliencePolicy:
    """Agent-level recovery knobs layered over the driver policy."""

    #: Driver-side policy pushed into the VM's virtio-mem driver.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Agent retries of a failed/short plug request before giving up.
    plug_retries: int = 0
    #: Backoff between agent-level plug retries.
    plug_backoff_ns: int = 4 * MS
    #: Degrade to static (no-elastic) mode after this many *consecutive*
    #: failed plug requests (0 = never degrade).
    degrade_after: int = 0
    #: Re-queue a partial unplug's shortfall at most this many times
    #: through the deferred-reclamation queue (0 = queue disabled).
    deferred_attempts: int = 0
    #: Base delay before a deferred reclamation retry (doubles per
    #: attempt).
    deferred_backoff_ns: int = 50 * MS

    def __post_init__(self) -> None:
        if self.plug_retries < 0:
            raise ConfigError(f"plug_retries must be >= 0, got {self.plug_retries}")
        if self.plug_backoff_ns <= 0 or self.deferred_backoff_ns <= 0:
            raise ConfigError("backoff durations must be positive")
        if self.degrade_after < 0:
            raise ConfigError(
                f"degrade_after must be >= 0, got {self.degrade_after}"
            )
        if self.deferred_attempts < 0:
            raise ConfigError(
                f"deferred_attempts must be >= 0, got {self.deferred_attempts}"
            )

    def deferred_backoff_for(self, attempt: int) -> int:
        """Backoff before deferred-reclaim attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ConfigError(f"attempt must be >= 1, got {attempt}")
        return self.deferred_backoff_ns * (2 ** (attempt - 1))


#: The inert default: no retries, no deferral, never degrade.
NO_RESILIENCE = ResiliencePolicy()


@dataclass(frozen=True)
class RetryBudget:
    """Router-side failover budget for one invocation.

    Bounds how far the :class:`~repro.cluster.routing.TraceRouter` will
    go to keep an invocation alive when its VM dies or its link drops:
    at most ``max_failovers`` re-dispatches to sibling VMs, and at most
    ``deadline_ns`` of queue wait before the invocation is shed as a
    structured ``RouteRejection(reason="deadline")``.  Every retry loop
    in the failover layer must be bounded by one of these fields (the
    ``no-unbounded-retry`` lint rule enforces the shape).
    """

    #: Re-dispatches to a sibling VM after a failed-over invocation
    #: (0 = fail in place, preserving pre-failover behaviour).
    max_failovers: int = 0
    #: Maximum queue wait before deadline shedding (None = wait forever,
    #: the pre-deadline behaviour).
    deadline_ns: "int | None" = None

    def __post_init__(self) -> None:
        if self.max_failovers < 0:
            raise ConfigError(
                f"max_failovers must be >= 0, got {self.max_failovers}"
            )
        if self.deadline_ns is not None and self.deadline_ns <= 0:
            raise ConfigError(
                f"deadline_ns must be positive, got {self.deadline_ns}"
            )


#: The inert default: no failover, no deadline.
NO_FAILOVER = RetryBudget()
