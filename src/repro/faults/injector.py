"""The deterministic fault-injection plane.

A :class:`FaultInjector` is threaded through the VM stack (driver,
device, agent) and consulted at every named injection site.  Three
properties make chaos runs usable as experiments:

* **Deterministic** — each enabled site draws from its own seeded stream
  (:func:`repro.sim.rng.make_rng` with stream ``faults/<site>``), so two
  runs at the same seed inject the same faults at the same operations,
  and enabling one site never shifts another site's draws.
* **Zero-cost when disabled** — a site without a spec returns ``None``
  without touching any RNG, so a plan with no specs (or the shared
  :data:`NO_FAULTS` injector) leaves every existing experiment
  byte-identical.
* **Accountable** — every fired fault is logged as an
  :class:`InjectedFault` and must later be *resolved* with the recovery
  path taken (``retried``, ``quarantined``, ``static-fallback``, ...).
  :meth:`FaultInjector.unresolved` lists faults nobody handled — the
  chaos experiment's completeness check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.faults.sites import ALL_SITES
from repro.obs.context import NO_SCOPE, ObsScope
from repro.obs.span import NULL_SPAN, SpanLike
from repro.sim.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "InjectedFault",
    "FaultInjector",
    "NO_FAULTS",
]


@dataclass(frozen=True)
class FaultSpec:
    """Injection policy for one site."""

    site: str
    #: Probability that one opportunity at this site fires (0..1).
    probability: float
    #: Stop injecting after this many fires (None = unlimited).
    max_fires: Optional[int] = None
    #: Simulated delay attached to delay-type sites (e.g. a slow backend
    #: response); ignored by sites that model hard failures.
    delay_ns: int = 0

    def __post_init__(self) -> None:
        if self.site not in ALL_SITES:
            raise ConfigError(f"unknown fault site {self.site!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError(
                f"{self.site}: probability must be in [0, 1], "
                f"got {self.probability}"
            )
        if self.max_fires is not None and self.max_fires < 0:
            raise ConfigError(f"{self.site}: max_fires must be >= 0")
        if self.delay_ns < 0:
            raise ConfigError(f"{self.site}: delay_ns must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """A set of per-site specs (hashable, safe inside frozen scenarios)."""

    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        seen = set()
        for spec in self.specs:
            if spec.site in seen:
                raise ConfigError(f"duplicate spec for site {spec.site!r}")
            seen.add(spec.site)

    @classmethod
    def uniform(
        cls,
        probability: float,
        sites: Tuple[str, ...] = ALL_SITES,
        delay_ns: int = 0,
        max_fires: Optional[int] = None,
    ) -> "FaultPlan":
        """One spec per site at a shared probability (chaos sweeps)."""
        return cls(
            tuple(
                FaultSpec(
                    site,
                    probability=probability,
                    max_fires=max_fires,
                    delay_ns=delay_ns,
                )
                for site in sites
            )
        )

    def spec_for(self, site: str) -> Optional[FaultSpec]:
        """The spec covering ``site`` (None when the site is disabled)."""
        for spec in self.specs:
            if spec.site == site:
                return spec
        return None


@dataclass
class InjectedFault:
    """One fired fault, awaiting resolution by the recovery machinery."""

    site: str
    sequence: int
    time_ns: int
    context: Dict[str, object] = field(default_factory=dict)
    #: Recovery path recorded by whoever handled the fault (None until
    #: resolved): ``retried``, ``quarantined``, ``partial-unplug``,
    #: ``static-fallback``, ``absorbed``, ``serialized``, ...
    resolution: Optional[str] = None
    resolved_ns: Optional[int] = None
    attempts: int = 0
    #: The ``fault`` span opened at fire time when tracing is enabled
    #: (closed at resolution); ``None`` on untraced runs.
    span: Optional[object] = field(default=None, repr=False, compare=False)


class FaultInjector:
    """Seed-driven fault plane shared by one VM's datapath components."""

    def __init__(
        self,
        plan: Optional[FaultPlan] = None,
        seed: int = 0,
        sim: Optional["Simulator"] = None,
    ):
        self.plan = plan if plan is not None else FaultPlan()
        self.seed = seed
        self.sim = sim
        self._specs: Dict[str, FaultSpec] = {
            spec.site: spec for spec in self.plan.specs if spec.probability > 0
        }
        self._rngs = {
            site: make_rng(seed, f"faults/{site}") for site in self._specs
        }
        self._fired: Dict[str, int] = {}
        #: Every fault fired so far, in firing order.
        self.injected: List[InjectedFault] = []
        self.obs: ObsScope = NO_SCOPE

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether any site can fire."""
        return bool(self._specs)

    def bind_sim(self, sim: "Simulator") -> None:
        """Late-bind the simulator used to timestamp faults.

        A no-op on disabled injectors (so the shared :data:`NO_FAULTS`
        singleton never captures any particular run's clock) and on
        injectors already bound.
        """
        if self._specs and self.sim is None:
            self.sim = sim

    def bind_obs(self, obs: ObsScope) -> None:
        """Late-bind the tracing scope faults report through.

        Mirrors :meth:`bind_sim`: a no-op on disabled injectors (the
        shared :data:`NO_FAULTS` singleton never traces) and on
        injectors already bound.
        """
        if self._specs and self.obs is NO_SCOPE:
            self.obs = obs

    def _now(self) -> int:
        return self.sim.now if self.sim is not None else 0

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------
    def fire(
        self, site: str, parent: SpanLike = NULL_SPAN, **context
    ) -> Optional[InjectedFault]:
        """One injection opportunity at ``site``.

        Returns the logged :class:`InjectedFault` when the site fires
        (the caller must eventually :meth:`resolve` it), ``None``
        otherwise.  Disabled sites return ``None`` without drawing any
        randomness.  ``parent`` links the fault's span (fire → resolve)
        into the trace of the operation that tripped it.
        """
        spec = self._specs.get(site)
        if spec is None:
            return None
        if spec.max_fires is not None and self._fired.get(site, 0) >= spec.max_fires:
            return None
        if self._rngs[site].random() >= spec.probability:
            return None
        fault = InjectedFault(
            site=site,
            sequence=len(self.injected),
            time_ns=self._now(),
            context=dict(context),
        )
        self._fired[site] = self._fired.get(site, 0) + 1
        self.injected.append(fault)
        if self.obs.enabled:
            fault.span = self.obs.span(
                "fault", parent=parent, site=site, **context
            )
            self.obs.inc("faults_fired_total", site=site)
        return fault

    def delay_ns(self, site: str) -> int:
        """The configured delay for a delay-type site (0 when disabled)."""
        spec = self._specs.get(site)
        return spec.delay_ns if spec is not None else 0

    # ------------------------------------------------------------------
    # Resolution accounting
    # ------------------------------------------------------------------
    def resolve(
        self, fault: InjectedFault, resolution: str, attempts: int = 0
    ) -> None:
        """Record how ``fault`` was handled (recovered or degraded)."""
        fault.resolution = resolution
        fault.attempts = attempts
        fault.resolved_ns = self._now()
        if fault.span is not None:
            fault.span.close(resolution=resolution, attempts=attempts)
        self.obs.inc(
            "faults_resolved_total", site=fault.site, resolution=resolution
        )

    def unresolved(self) -> List[InjectedFault]:
        """Fired faults no recovery path has claimed yet."""
        return [fault for fault in self.injected if fault.resolution is None]

    def count(self, site: Optional[str] = None) -> int:
        """Faults fired so far (at one site, or in total)."""
        if site is None:
            return len(self.injected)
        return self._fired.get(site, 0)

    def counts_by_resolution(self) -> Dict[str, int]:
        """Resolution → number of faults resolved that way."""
        counts: Dict[str, int] = {}
        for fault in self.injected:
            key = fault.resolution if fault.resolution is not None else "unresolved"
            counts[key] = counts.get(key, 0) + 1
        return counts

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"<FaultInjector {state} sites={sorted(self._specs)} "
            f"fired={len(self.injected)}>"
        )


#: Shared inert injector: no sites, no RNG draws, no logging.  The
#: default for every VM, guaranteeing fault machinery is invisible to
#: existing experiments.
NO_FAULTS = FaultInjector()
