"""Free page reporting (the paper's reference [7]).

A guest kernel feature (shipped alongside virtio-balloon) that
periodically reports batches of free pages to the hypervisor, which
``MADV_DONTNEED``s them — the host gets idle memory back *without*
resizing the VM.  Its characteristics versus hot(un)plug:

* reclamation is automatic but **lazy**: freed memory returns to the
  host only at the next reporting tick (hundreds of ms to seconds);
* the guest's memory size never shrinks, so the host must keep backing
  pages available for instant re-faulting — reported memory is
  returned-but-promised, not released capacity;
* re-allocating reported pages makes the host re-charge them (plus a
  host-side fault penalty), so churny workloads bounce memory back and
  forth.

The model reconciles at tick granularity: each tick compares the guest's
reportable free pages against what is currently reported and settles the
difference with the host, which captures exactly the latency and churn
the mechanism exhibits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigError
from repro.host.machine import NumaNode
from repro.mm.manager import GuestMemoryManager
from repro.sim.costs import CostModel
from repro.sim.cpu import CpuCore
from repro.sim.engine import Process, Simulator, Timeout
from repro.units import MIB, SEC, bytes_to_pages, pages_to_bytes

__all__ = ["FreePageReporting", "ReportTick", "FPR_LABEL"]

#: Accounting label for reporting work.
FPR_LABEL = "free-page-reporting"

#: Reporting granularity: pages are reported in 2 MiB batches.
REPORT_BATCH_PAGES = 512


@dataclass
class ReportTick:
    """One reconciliation tick's outcome."""

    time_ns: int
    reported_delta_pages: int
    cumulative_reported_pages: int


class FreePageReporting:
    """Periodic free-page reporting for one guest."""

    def __init__(
        self,
        sim: Simulator,
        manager: GuestMemoryManager,
        costs: CostModel,
        irq_core: CpuCore,
        vmm_core: CpuCore,
        host_node: NumaNode,
        report_interval_ns: int = 2 * SEC,
        watermark_pages: int = bytes_to_pages(64 * MIB),
    ):
        if report_interval_ns <= 0:
            raise ConfigError("report interval must be positive")
        self.sim = sim
        self.manager = manager
        self.costs = costs
        self.irq_core = irq_core
        self.vmm_core = vmm_core
        self.host_node = host_node
        self.report_interval_ns = report_interval_ns
        self.watermark_pages = watermark_pages
        #: Pages currently reported (host-released but still guest-free).
        self.reported_pages = 0
        self.ticks: List[ReportTick] = []
        self._process: Optional[Process] = None
        self._stopped = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, until_ns: Optional[int] = None) -> Process:
        """Start the periodic reporting thread."""
        if self._process is not None:
            raise ConfigError("reporting already started")
        self._process = self.sim.spawn(self._loop(until_ns), name="fpr")
        return self._process

    def stop(self) -> None:
        """Stop after the current tick (reported pages stay reported)."""
        self._stopped = True

    # ------------------------------------------------------------------
    # The reporting loop
    # ------------------------------------------------------------------
    def _reportable_pages(self) -> int:
        free = sum(zone.free_pages for zone in self.manager.zonelist(True))
        reportable = max(0, free - self.watermark_pages)
        # Whole 2 MiB batches only.
        return (reportable // REPORT_BATCH_PAGES) * REPORT_BATCH_PAGES

    def _loop(self, until_ns: Optional[int]):
        while not self._stopped:
            if until_ns is not None and self.sim.now >= until_ns:
                break
            yield Timeout(self.report_interval_ns)
            if self._stopped:
                # Stopped while sleeping: do not settle with the host —
                # the VM may already have released its account.
                break
            yield from self._tick()
        return None

    def _tick(self):
        """Reconcile reported pages with the current free set."""
        target = self._reportable_pages()
        delta = target - self.reported_pages
        if delta > 0:
            # Newly free pages: report them, host releases the backing.
            scan_cost = (
                delta // REPORT_BATCH_PAGES + 1
            ) * self.costs.unplug_scan_block_ns
            yield self.irq_core.submit(scan_cost, FPR_LABEL)
            yield self.vmm_core.submit(
                delta * self.costs.balloon_host_release_page_ns, FPR_LABEL
            )
            # The hint is advisory by protocol design: the guest may
            # re-use reported pages during the scan/release yields, and
            # the next tick's delta<0 branch re-charges them (plus the
            # first-touch fault) — the same reconciliation real
            # free-page-reporting relies on.  The stale delta is
            # therefore self-correcting, not a race.
            self.host_node.discharge(  # lint: allow[stale-guard-across-yield] advisory hint, reconciled next tick
                pages_to_bytes(delta)
            )
        elif delta < 0:
            # The guest re-used reported pages: the host re-charges them
            # and pays a fault on first touch of each returned page.
            returned = -delta
            self.host_node.charge(pages_to_bytes(returned))
            yield self.vmm_core.submit(
                returned * self.costs.anon_fault_ns, FPR_LABEL
            )
        # Recording the pre-yield snapshot as "reported" is what *makes*
        # the reconciliation above converge: the next tick's delta is
        # computed against exactly what the host was told, so any pages
        # the guest took back mid-yield surface as delta<0 re-charges.
        self.reported_pages = target  # lint: allow[stale-guard-across-yield] ledger of what the host was told, by design
        self.ticks.append(
            ReportTick(
                time_ns=self.sim.now,
                reported_delta_pages=delta,
                cumulative_reported_pages=self.reported_pages,
            )
        )
        return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def reported_bytes(self) -> int:
        """Memory currently given back to the host via reporting."""
        return pages_to_bytes(self.reported_pages)

    def time_reported_reached(self, threshold_bytes: int) -> Optional[int]:
        """First tick time at which reported memory reached ``threshold``."""
        for tick in self.ticks:
            if pages_to_bytes(tick.cumulative_reported_pages) >= threshold_bytes:
                return tick.time_ns
        return None
