"""Related-work baselines (Section 7 of the paper).

The paper positions HotMem against the two state-of-practice VM memory
elasticity interfaces:

* **memory ballooning** (:mod:`repro.baselines.balloon`) — a guest driver
  allocates guest pages and reports them to the hypervisor; reclamation
  is page-granular but *unreliable or unpredictably slow*: inflation
  stalls whenever the guest has no free pages to give;
* **ACPI DIMM hotplug** (:mod:`repro.baselines.dimm`) — the pre-virtio-mem
  interface: whole (virtual) DIMMs are the only (un)plug unit, so
  reclamation is all-or-nothing per DIMM and fails whenever one block of
  the DIMM cannot be emptied;
* **free page reporting** (:mod:`repro.baselines.fpr`, the paper's
  reference [7]) — the guest periodically reports free pages that the
  host ``MADV_DONTNEED``s: automatic but lazy, and the VM never actually
  shrinks.

All run against the same guest memory manager and cost model as
virtio-mem and HotMem, so the comparison experiment
(:mod:`repro.experiments.baselines_comparison`) is apples-to-apples.
"""

from repro.baselines.balloon import BALLOON_LABEL, BalloonResult, VirtioBalloon
from repro.baselines.dimm import (
    DEFAULT_DIMM_BYTES,
    DIMM_LABEL,
    DimmHotplug,
    DimmUnplugResult,
)
from repro.baselines.fpr import FPR_LABEL, FreePageReporting, ReportTick

__all__ = [
    "VirtioBalloon",
    "BalloonResult",
    "BALLOON_LABEL",
    "DimmHotplug",
    "DimmUnplugResult",
    "DIMM_LABEL",
    "DEFAULT_DIMM_BYTES",
    "FreePageReporting",
    "ReportTick",
    "FPR_LABEL",
]
