"""ACPI (v)DIMM hotplug: the coarse-grained baseline virtio-mem replaced.

The default DIMM interface operates in whole-DIMM units (Section 2.2):
a virtual DIMM spans several 128 MiB memory blocks (1 GiB here, i.e. 8
blocks) and can only be unplugged atomically.  Every block of the DIMM
must be offlined — migrating its occupants — or the whole operation
aborts, which makes reclamation both slower (more forced migrations per
useful byte) and less reliable (one stubborn block wastes the work done
on its siblings) than virtio-mem's per-block granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigError, HotplugError, OfflineFailed
from repro.host.machine import NumaNode
from repro.mm.block import BlockState
from repro.mm.manager import GuestMemoryManager
from repro.sim.costs import CostModel, ZeroingMode
from repro.sim.cpu import CpuCore
from repro.sim.engine import Simulator
from repro.units import GIB, MEMORY_BLOCK_SIZE, PAGES_PER_BLOCK, bytes_to_blocks

__all__ = [
    "DimmHotplug",
    "DimmUnplugResult",
    "DIMM_LABEL",
    "DEFAULT_DIMM_BYTES",
]

#: Accounting label for DIMM hotplug work.
DIMM_LABEL = "dimm-hotplug"

#: Default virtual DIMM size (8 memory blocks).
DEFAULT_DIMM_BYTES = 1 * GIB


@dataclass
class DimmUnplugResult:
    """Outcome of one whole-DIMM unplug request."""

    requested_dimms: int
    unplugged_dimms: int
    aborted_dimms: int
    migrated_pages: int
    wasted_migrated_pages: int
    latency_ns: int
    dimm_bytes: int = DEFAULT_DIMM_BYTES

    @property
    def unplugged_bytes(self) -> int:
        return self.unplugged_dimms * self.dimm_bytes

    @property
    def fully_unplugged(self) -> bool:
        return self.unplugged_dimms == self.requested_dimms


class DimmHotplug:
    """Whole-DIMM (un)plug over the shared guest memory manager."""

    def __init__(
        self,
        sim: Simulator,
        manager: GuestMemoryManager,
        costs: CostModel,
        irq_core: CpuCore,
        vmm_core: CpuCore,
        host_node: NumaNode,
        dimm_bytes: int = DEFAULT_DIMM_BYTES,
    ):
        if dimm_bytes <= 0 or dimm_bytes % MEMORY_BLOCK_SIZE:
            raise ConfigError("DIMM size must be whole memory blocks")
        self.sim = sim
        self.manager = manager
        self.costs = costs
        self.irq_core = irq_core
        self.vmm_core = vmm_core
        self.host_node = host_node
        self.blocks_per_dimm = dimm_bytes // MEMORY_BLOCK_SIZE
        self.dimm_bytes = dimm_bytes
        if manager.hotplug_blocks % self.blocks_per_dimm:
            raise ConfigError(
                "hotplug region must be a whole number of DIMMs"
            )
        #: Slots claimed by an in-flight (un)plug.  Both operations
        #: yield between choosing slots and finishing the block-state
        #: transitions, so concurrent requests must not pick the same
        #: slot.
        self._reserved: set = set()

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def dimm_block_indices(self, dimm: int) -> List[int]:
        """Physical block indices of one DIMM slot."""
        base = self.manager.boot_blocks + dimm * self.blocks_per_dimm
        return list(range(base, base + self.blocks_per_dimm))

    @property
    def dimm_slots(self) -> int:
        """Number of DIMM slots in the device region."""
        return self.manager.hotplug_blocks // self.blocks_per_dimm

    def plugged_dimms(self) -> List[int]:
        """Slots whose blocks are all online."""
        return [
            dimm
            for dimm in range(self.dimm_slots)
            if all(
                self.manager.blocks[i].state is BlockState.ONLINE
                for i in self.dimm_block_indices(dimm)
            )
        ]

    def free_dimms(self) -> List[int]:
        """Slots whose blocks are all absent (pluggable right now).

        Slots mid-unplug (blocks isolated or offlining) and slots
        reserved by an in-flight operation are neither plugged nor free
        until the operation settles.
        """
        return [
            dimm
            for dimm in range(self.dimm_slots)
            if dimm not in self._reserved
            and all(
                self.manager.blocks[i].state is BlockState.ABSENT
                for i in self.dimm_block_indices(dimm)
            )
        ]

    # ------------------------------------------------------------------
    # Plug
    # ------------------------------------------------------------------
    def plug(self, dimm_count: int):
        """Process generator: hot-add ``dimm_count`` whole DIMMs."""
        free_slots = self.free_dimms()
        if dimm_count > len(free_slots):
            raise HotplugError(
                f"only {len(free_slots)} free DIMM slots, need {dimm_count}"
            )
        zero_pages = (
            PAGES_PER_BLOCK
            if self.costs.zeroing_mode == ZeroingMode.INIT_ON_FREE
            else 0
        )
        start = self.sim.now
        self.host_node.charge(dimm_count * self.dimm_bytes)
        claimed = free_slots[:dimm_count]
        self._reserved.update(claimed)
        try:
            yield self.vmm_core.submit(
                self.costs.virtio_request_rtt_ns, DIMM_LABEL
            )
            for dimm in claimed:
                for index in self.dimm_block_indices(dimm):
                    self.manager.online_block(index, self.manager.zone_movable)
                    yield self.irq_core.submit(
                        self.costs.plug_block_ns(zero_pages=zero_pages),
                        DIMM_LABEL,
                    )
        finally:
            self._reserved.difference_update(claimed)
        return self.sim.now - start

    # ------------------------------------------------------------------
    # Unplug (atomic per DIMM)
    # ------------------------------------------------------------------
    def unplug(self, size_bytes: int):
        """Process generator: reclaim ``size_bytes`` in whole-DIMM units.

        The request is rounded *up* to DIMMs; each DIMM either fully
        offlines (all blocks migrated out) or aborts, rolling back its
        partially-offlined blocks — the migrations already performed for
        an aborted DIMM are wasted work, reported separately.
        Returns a :class:`DimmUnplugResult`.
        """
        wanted = -(-bytes_to_blocks(size_bytes) // self.blocks_per_dimm)
        candidates = sorted(self.plugged_dimms(), reverse=True)
        start = self.sim.now
        migrated_total = 0
        wasted = 0
        unplugged = 0
        aborted = 0
        yield self.vmm_core.submit(self.costs.virtio_request_rtt_ns, DIMM_LABEL)
        for dimm in candidates:
            if unplugged == wanted:
                break
            blocks = [self.manager.blocks[i] for i in self.dimm_block_indices(dimm)]
            # The candidate list is a snapshot from before the request
            # RTT; skip slots a concurrent operation has since claimed
            # or already transitioned.
            if dimm in self._reserved or any(
                block.state is not BlockState.ONLINE for block in blocks
            ):
                continue
            self._reserved.add(dimm)
            emptied = []
            migrated_here = 0
            failed = False
            for block in blocks:
                try:
                    self.manager.isolate_block(block)
                except OfflineFailed:
                    failed = True
                    break
                try:
                    outcome = self.manager.migrate_block_out(block)
                except OfflineFailed:
                    self.manager.unisolate_block(block)
                    failed = True
                    break
                zeroed = (
                    outcome.migrated_pages
                    if self.costs.zeroing_mode == ZeroingMode.INIT_ON_ALLOC
                    else 0
                )
                cost = self.costs.offline_block_ns(
                    outcome.migrated_pages, zeroed
                )
                yield self.irq_core.submit(cost, DIMM_LABEL)
                migrated_here += outcome.migrated_pages
                emptied.append(block)
            if failed:
                # Atomic abort: un-isolate everything already emptied; the
                # migrations stay where they landed (wasted work).
                for block in emptied:
                    self.manager.unisolate_block(block)
                self._reserved.discard(dimm)
                wasted += migrated_here
                aborted += 1
                continue
            for block in emptied:
                yield self.irq_core.submit(
                    self.costs.hot_remove_block_ns, DIMM_LABEL
                )
                self.manager.offline_and_remove(block, migrate=False)
            yield self.vmm_core.submit(
                self.blocks_per_dimm * self.costs.madvise_block_ns, DIMM_LABEL
            )
            self.host_node.discharge(self.dimm_bytes)
            self._reserved.discard(dimm)
            migrated_total += migrated_here
            unplugged += 1
        return DimmUnplugResult(
            requested_dimms=wanted,
            unplugged_dimms=unplugged,
            aborted_dimms=aborted,
            migrated_pages=migrated_total,
            wasted_migrated_pages=wasted,
            latency_ns=self.sim.now - start,
            dimm_bytes=self.dimm_bytes,
        )
