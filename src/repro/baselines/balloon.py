"""virtio-balloon: the state-of-practice elasticity baseline.

The hypervisor sets a target balloon size; the guest driver *inflates*
by allocating guest pages and reporting them (the host then reuses the
backing memory) and *deflates* by returning previously ballooned pages.

The pathology the paper cites (Section 7): inflation works through the
guest allocator, so when free guest memory runs out the driver stalls
and retries — reclamation becomes unreliable and unpredictably slow,
unlike hotplug (which can migrate) and unlike HotMem (which never needs
either).  This model reproduces exactly that: inflation grabs whatever
free pages exist (above a reserve watermark), then backs off and
retries until it reaches the target or exhausts its retry budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.host.machine import NumaNode
from repro.mm.manager import GuestMemoryManager
from repro.mm.owner import PageOwner
from repro.sim.costs import CostModel
from repro.sim.cpu import CpuCore
from repro.sim.engine import Simulator, Timeout
from repro.units import MIB, bytes_to_pages, pages_to_bytes

__all__ = ["VirtioBalloon", "BalloonResult", "BALLOON_LABEL"]

#: Accounting label for balloon driver work.
BALLOON_LABEL = "virtio-balloon"

#: Free pages the driver will not steal from the guest (min watermark).
DEFAULT_RESERVE_PAGES = bytes_to_pages(16 * MIB)

#: Inflation passes before the driver reports a partial result.
DEFAULT_MAX_RETRIES = 20


@dataclass
class BalloonResult:
    """Hypervisor-side view of one inflate (reclaim) request."""

    requested_pages: int
    reclaimed_pages: int
    latency_ns: int
    retries: int

    @property
    def fully_reclaimed(self) -> bool:
        return self.reclaimed_pages == self.requested_pages

    @property
    def reclaimed_bytes(self) -> int:
        return pages_to_bytes(self.reclaimed_pages)


class VirtioBalloon:
    """One VM's balloon device/driver pair.

    Page-granular: unlike the hotplug interfaces it has no 128 MiB block
    constraint, but it can only take pages the guest allocator can hand
    out *right now*.
    """

    def __init__(
        self,
        sim: Simulator,
        manager: GuestMemoryManager,
        costs: CostModel,
        irq_core: CpuCore,
        vmm_core: CpuCore,
        host_node: NumaNode,
        reserve_pages: int = DEFAULT_RESERVE_PAGES,
        max_retries: int = DEFAULT_MAX_RETRIES,
    ):
        if reserve_pages < 0 or max_retries < 0:
            raise ConfigError("reserve and retries must be non-negative")
        self.sim = sim
        self.manager = manager
        self.costs = costs
        self.irq_core = irq_core
        self.vmm_core = vmm_core
        self.host_node = host_node
        self.reserve_pages = reserve_pages
        self.max_retries = max_retries
        #: Pages currently held by the balloon (owner in the guest).
        self.balloon_owner = PageOwner("virtio-balloon", movable=True)

    @property
    def inflated_pages(self) -> int:
        """Pages currently reclaimed from the guest via the balloon."""
        return self.balloon_owner.total_pages

    # ------------------------------------------------------------------
    # Inflate (reclaim)
    # ------------------------------------------------------------------
    def _stealable_pages(self) -> int:
        free = sum(zone.free_pages for zone in self.manager.zonelist(True))
        return max(0, free - self.reserve_pages)

    def inflate(self, target_bytes: int):
        """Process generator: reclaim ``target_bytes`` from the guest.

        Returns a :class:`BalloonResult`; ``reclaimed_pages`` may be less
        than requested when the guest never freed enough memory within
        the retry budget (ballooning's unreliability).
        """
        target_pages = bytes_to_pages(target_bytes)
        start = self.sim.now
        reclaimed = 0
        retries = 0
        yield self.vmm_core.submit(self.costs.virtio_request_rtt_ns, BALLOON_LABEL)
        while reclaimed < target_pages:
            take = min(self._stealable_pages(), target_pages - reclaimed)
            if take > 0:
                self.manager.alloc_pages(
                    self.balloon_owner, take, zones=self.manager.zonelist(True)
                )
                # Guest-side allocation work, then host-side release.
                yield self.irq_core.submit(
                    take * self.costs.balloon_inflate_page_ns, BALLOON_LABEL
                )
                yield self.vmm_core.submit(
                    take * self.costs.balloon_host_release_page_ns, BALLOON_LABEL
                )
                self.host_node.discharge(pages_to_bytes(take))
                reclaimed += take
                continue
            if retries >= self.max_retries:
                break
            retries += 1
            yield Timeout(self.costs.balloon_retry_interval_ns)
        return BalloonResult(
            requested_pages=target_pages,
            reclaimed_pages=reclaimed,
            latency_ns=self.sim.now - start,
            retries=retries,
        )

    # ------------------------------------------------------------------
    # Deflate (give memory back)
    # ------------------------------------------------------------------
    def deflate(self, target_bytes: int):
        """Process generator: return up to ``target_bytes`` to the guest."""
        pages = min(bytes_to_pages(target_bytes), self.inflated_pages)
        start = self.sim.now
        if pages > 0:
            # Host re-charges the backing memory before the guest reuses it.
            self.host_node.charge(pages_to_bytes(pages))
            self.manager.free_pages(self.balloon_owner, pages)
            yield self.irq_core.submit(
                pages * self.costs.balloon_deflate_page_ns, BALLOON_LABEL
            )
        return BalloonResult(
            requested_pages=bytes_to_pages(target_bytes),
            reclaimed_pages=pages,
            latency_ns=self.sim.now - start,
            retries=0,
        )
