"""The related-work baselines as first-class deployment modes.

Folds :mod:`repro.baselines` into the registry (Section 7's comparison
mechanisms), so ballooning, ACPI DIMM hotplug and free page reporting
provision through the fleet, serve traces through the router, and sweep
through the density/chaos/serverless experiments exactly like the three
original modes.

Admission credits are chosen from each mechanism's reclamation
semantics, keeping the paper's ordering (hotmem's 0.75 stays highest):

* **balloon** (0.2): page-granular and genuinely elastic, but inflation
  is unreliable — it can only take pages the guest allocator has free
  right now, and stalls under pressure — so it earns slightly less than
  vanilla virtio-mem's 0.25.
* **dimm** (0.1): whole-DIMM atomicity strands every sub-GiB excess and
  one stubborn block aborts the entire DIMM, so only a sliver of the
  region can be credited.
* **fpr** (0.0): the VM never shrinks; reported pages are
  returned-but-promised, not released capacity, so admission must treat
  the footprint like an overprovisioned VM's.

All three bypass the virtio-mem device/driver, so only the agent-level
fault sites apply to them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.baselines.balloon import BALLOON_LABEL, VirtioBalloon
from repro.baselines.dimm import DEFAULT_DIMM_BYTES, DIMM_LABEL, DimmHotplug
from repro.baselines.fpr import FPR_LABEL, FreePageReporting
from repro.modes.base import DeploymentBackend
from repro.modes.datapaths import BalloonDatapath, DimmDatapath, FprDatapath
from repro.modes.registry import register
from repro.units import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.vmm.vm import VirtualMachine

__all__ = ["BalloonMode", "DimmMode", "FprMode", "BALLOON", "DIMM", "FPR"]


class BalloonMode(DeploymentBackend):
    """virtio-balloon elasticity: inflate to reclaim, deflate to grow."""

    name = "balloon"
    elastic = True
    reclaim_credit = 0.2
    cpu_labels = (BALLOON_LABEL,)
    reclaim_granularity_bytes = PAGE_SIZE
    reclaim_semantics = (
        "page-granular but unreliable: inflation takes only what the "
        "guest allocator has free and retries when it runs dry"
    )

    def build_datapath(self, vm: "VirtualMachine") -> BalloonDatapath:
        balloon = VirtioBalloon(
            vm.sim,
            vm.manager,
            vm.costs,
            irq_core=vm.irq_vcpu,
            vmm_core=vm.vmm_core,
            host_node=vm.node,
        )
        return BalloonDatapath(vm, balloon)

    def prepare_vm(self, vm: "VirtualMachine") -> None:
        # Boot with the region plugged and fully ballooned: the host
        # backs only boot memory until instances deflate on demand.
        vm.plug_all_at_boot()
        vm.datapath.inflate_at_boot()


class DimmMode(DeploymentBackend):
    """ACPI (v)DIMM hotplug: whole-GiB atomic plug/unplug units."""

    name = "dimm"
    elastic = True
    reclaim_credit = 0.1
    cpu_labels = (DIMM_LABEL,)
    reclaim_granularity_bytes = DEFAULT_DIMM_BYTES
    reclaim_semantics = (
        "whole-DIMM atomic unplug: sub-DIMM excess is stranded and one "
        "stubborn block aborts the DIMM"
    )

    def round_region(self, region_bytes: int) -> int:
        # The DIMM interface needs a whole number of DIMM slots.
        dimms = -(-region_bytes // DEFAULT_DIMM_BYTES)
        return dimms * DEFAULT_DIMM_BYTES

    def build_datapath(self, vm: "VirtualMachine") -> DimmDatapath:
        dimm = DimmHotplug(
            vm.sim,
            vm.manager,
            vm.costs,
            irq_core=vm.irq_vcpu,
            vmm_core=vm.vmm_core,
            host_node=vm.node,
        )
        return DimmDatapath(vm, dimm)


class FprMode(DeploymentBackend):
    """Free page reporting: static VM size, lazy host-side reclaim."""

    name = "fpr"
    elastic = False
    reclaim_credit = 0.0
    cpu_labels = (FPR_LABEL,)
    reclaim_semantics = (
        "the VM never shrinks: free pages return to the host lazily at "
        "reporting ticks and bounce back on first reuse"
    )

    def build_datapath(self, vm: "VirtualMachine") -> FprDatapath:
        fpr = FreePageReporting(
            vm.sim,
            vm.manager,
            vm.costs,
            irq_core=vm.irq_vcpu,
            vmm_core=vm.vmm_core,
            host_node=vm.node,
        )
        return FprDatapath(vm, fpr)

    def prepare_vm(self, vm: "VirtualMachine") -> None:
        vm.plug_all_at_boot()
        vm.datapath.start()


BALLOON = register(BalloonMode())
DIMM = register(DimmMode())
FPR = register(FprMode())
