"""Per-VM reclamation datapaths for the built-in modes.

Each datapath adapts one mechanism to the agent-facing plug/unplug
contract (:class:`~repro.virtio.device.PlugResult` /
:class:`~repro.virtio.device.UnplugResult`).  The adapters are where
each baseline's pathologies surface through the *same* resilience
machinery the virtio-mem path uses:

* the balloon's unreliable inflation shows up as partial unplugs the
  agent re-queues through deferred reclamation;
* DIMM hotplug's whole-DIMM atomicity shows up as sub-DIMM excess the
  agent can never reclaim and aborted DIMMs it retries later;
* free page reporting never resizes at all — its datapath exists only
  for consistency checking and the background reporting loop.

Host exhaustion is clamped here (mirroring the virtio-mem device's
``host-oom``/``host-partial`` results) so oversubscribed fleets get a
structured refusal instead of a crash deep inside a simulated process.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.baselines.balloon import VirtioBalloon
from repro.baselines.dimm import DimmHotplug
from repro.baselines.fpr import FreePageReporting
from repro.errors import HotplugError
from repro.mm.block import BlockState
from repro.modes.base import ReclaimDatapath
from repro.obs.span import NULL_SPAN, SpanLike
from repro.units import (
    PAGE_SIZE,
    format_bytes,
    pages_to_bytes,
)
from repro.virtio.device import PlugResult, UnplugResult

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.vmm.vm import VirtualMachine

__all__ = [
    "VirtioMemDatapath",
    "BalloonDatapath",
    "DimmDatapath",
    "FprDatapath",
]


def _finish_plug_span(
    vm: "VirtualMachine",
    span: SpanLike,
    start: int,
    end: int,
    requested: int,
    completed: int,
    error: str,
) -> None:
    """Close a mechanism ``device.plug`` span and emit event + metrics.

    Mirrors ``VirtioMemDevice._trace_plug`` for datapaths that bypass the
    virtio-mem device (balloon, DIMM): untraced runs append the
    :class:`~repro.vmm.tracing.ResizeEvent` directly, traced runs let the
    tracer's span consumer rebuild it — either way the VM's resize log is
    populated (it used to stay silently empty for these mechanisms).
    """
    span.set(completed_bytes=completed, error=error)
    if not vm.obs.enabled:
        vm.tracer.record_plug(start, end, requested, completed)
    span.close(end_ns=end)
    vm.obs.inc("plug_requests_total", error=error or "ok")
    if completed:
        vm.obs.inc("plugged_bytes_total", completed)
    vm.obs.observe("plug_latency_ns", end - start)


def _finish_unplug_span(
    vm: "VirtualMachine",
    span: SpanLike,
    start: int,
    end: int,
    requested: int,
    completed: int,
    migrated_pages: int,
) -> None:
    """Close a mechanism ``device.unplug`` span and emit event + metrics.

    Zero-completed unplugs (a balloon with nothing free to inflate over,
    a sub-DIMM request) are recorded like any other: their latency
    charges the tracer's busy-time denominator while adding no bytes.
    """
    span.set(completed_bytes=completed, migrated_pages=migrated_pages)
    if not vm.obs.enabled:
        vm.tracer.record_unplug(start, end, requested, completed, migrated_pages)
    span.close(end_ns=end)
    if completed == requested:
        outcome = "full"
    elif completed:
        outcome = "partial"
    else:
        outcome = "none"
    vm.obs.inc("unplug_requests_total", outcome=outcome)
    if completed:
        vm.obs.inc("unplugged_bytes_total", completed)
    if migrated_pages:
        vm.obs.inc("migrated_pages_total", migrated_pages)
    vm.obs.observe("unplug_latency_ns", end - start)


class VirtioMemDatapath(ReclaimDatapath):
    """The default datapath: the VM's own virtio-mem device.

    A pure pass-through — requests go straight to the device, so runs
    through this datapath are byte-identical to the pre-registry code.
    """

    name = "virtio-mem"

    def __init__(self, vm: "VirtualMachine"):
        self.vm = vm

    @property
    def elastic_bytes(self) -> int:
        return self.vm.device.plugged_bytes

    def plug(self, size_bytes: int, parent: SpanLike = NULL_SPAN):
        return self.vm.device.plug(size_bytes, parent=parent)

    def unplug(self, size_bytes: int, parent: SpanLike = NULL_SPAN):
        return self.vm.device.unplug(size_bytes, parent=parent)

    def check_consistency(self) -> None:
        self.vm.device.check_consistency()


class BalloonDatapath(ReclaimDatapath):
    """virtio-balloon adapted to the plug/unplug contract.

    The VM boots with the whole device region plugged and the balloon
    inflated over all of it, so the host initially backs only boot
    memory.  Growing the VM *deflates* (host re-charges pages); shrinking
    *inflates* (host releases pages).  Inflation's unreliability — the
    driver can only take pages the guest allocator has free right now —
    surfaces as partial ``UnplugResult``\\ s.
    """

    name = "balloon"

    def __init__(self, vm: "VirtualMachine", balloon: VirtioBalloon):
        self.vm = vm
        self.balloon = balloon

    @property
    def elastic_bytes(self) -> int:
        return self.vm.device.plugged_bytes - pages_to_bytes(
            self.balloon.inflated_pages
        )

    def inflate_at_boot(self) -> None:
        """Swallow the freshly plugged region into the balloon.

        State-only (no simulated work), mirroring ``plug_all_at_boot``:
        the region's pages move to the balloon owner and the host
        releases their backing, so the VM starts sized to its boot
        memory exactly like an elastic virtio-mem VM.
        """
        manager = self.vm.manager
        take = manager.zone_movable.free_pages
        if take > 0:
            manager.alloc_pages(
                self.balloon.balloon_owner, take, zones=[manager.zone_movable]
            )
            self.vm.node.discharge(pages_to_bytes(take))

    def plug(self, size_bytes: int, parent: SpanLike = NULL_SPAN):
        start = self.vm.sim.now
        span = self.vm.obs.span(
            "device.plug",
            parent=parent,
            requested_bytes=size_bytes,
            mechanism=self.name,
        )
        # Clamp to what the host can back right now (deflate charges the
        # node before releasing pages to the guest); there is no yield
        # between this check and the charge, so the clamp cannot race.
        host_free = (self.vm.node.node.free_bytes // PAGE_SIZE) * PAGE_SIZE
        grant = min(size_bytes, host_free)
        host_limited = grant < size_bytes
        mech = self.vm.obs.span("phase.mechanism", parent=span, op="deflate")
        result = yield from self.balloon.deflate(grant)
        mech.close()
        plugged = result.reclaimed_bytes
        if plugged >= size_bytes:
            error = ""
        elif plugged == 0:
            error = "host-oom" if host_limited else "nack"
        else:
            error = "host-partial" if host_limited else "partial"
        _finish_plug_span(
            self.vm, span, start, self.vm.sim.now, size_bytes, plugged, error
        )
        return PlugResult(
            requested_bytes=size_bytes,
            plugged_bytes=plugged,
            latency_ns=result.latency_ns,
            zeroed_pages=0,
            error=error,
        )

    def unplug(self, size_bytes: int, parent: SpanLike = NULL_SPAN):
        start = self.vm.sim.now
        span = self.vm.obs.span(
            "device.unplug",
            parent=parent,
            requested_bytes=size_bytes,
            mechanism=self.name,
        )
        mech = self.vm.obs.span("phase.mechanism", parent=span, op="inflate")
        result = yield from self.balloon.inflate(size_bytes)
        mech.close()
        _finish_unplug_span(
            self.vm,
            span,
            start,
            self.vm.sim.now,
            size_bytes,
            result.reclaimed_bytes,
            0,
        )
        return UnplugResult(
            requested_bytes=size_bytes,
            unplugged_bytes=result.reclaimed_bytes,
            latency_ns=result.latency_ns,
            migrated_pages=0,
            scanned_blocks=0,
        )

    def check_consistency(self) -> None:
        self.vm.device.check_consistency()
        inflated = pages_to_bytes(self.balloon.inflated_pages)
        if inflated > self.vm.device.plugged_bytes:
            raise HotplugError(
                f"balloon holds {format_bytes(inflated)} but only "
                f"{format_bytes(self.vm.device.plugged_bytes)} is plugged"
            )


class DimmDatapath(ReclaimDatapath):
    """ACPI DIMM hotplug adapted to the plug/unplug contract.

    Whole-DIMM granularity cuts both ways: plugs round *up* (the agent's
    deficit guard absorbs the overshoot) while unplugs round *down* —
    rounding up would reclaim memory live instances still need, so
    sub-DIMM excess simply stays plugged (the stranding the paper
    attributes to coarse hot(un)plug).
    """

    name = "dimm"

    def __init__(self, vm: "VirtualMachine", dimm: DimmHotplug):
        self.vm = vm
        self.dimm = dimm

    @property
    def elastic_bytes(self) -> int:
        return len(self.dimm.plugged_dimms()) * self.dimm.dimm_bytes

    def plug(self, size_bytes: int, parent: SpanLike = NULL_SPAN):
        start = self.vm.sim.now
        span = self.vm.obs.span(
            "device.plug",
            parent=parent,
            requested_bytes=size_bytes,
            mechanism=self.name,
        )
        dimm_bytes = self.dimm.dimm_bytes
        wanted = -(-size_bytes // dimm_bytes)
        free_slots = len(self.dimm.free_dimms())
        host_free_dimms = self.vm.node.node.free_bytes // dimm_bytes
        grant = min(wanted, free_slots, host_free_dimms)
        host_limited = host_free_dimms < min(wanted, free_slots)
        mech = self.vm.obs.span(
            "phase.mechanism", parent=span, op="dimm-plug", dimms=grant
        )
        latency = yield from self.dimm.plug(grant)
        mech.close()
        plugged = grant * dimm_bytes
        if grant == wanted:
            error = ""
        elif plugged == 0:
            error = "host-oom" if host_limited else "nack"
        else:
            error = "host-partial" if host_limited else "partial"
        _finish_plug_span(
            self.vm, span, start, self.vm.sim.now, size_bytes, plugged, error
        )
        return PlugResult(
            requested_bytes=size_bytes,
            plugged_bytes=plugged,
            latency_ns=latency,
            zeroed_pages=0,
            error=error,
        )

    def unplug(self, size_bytes: int, parent: SpanLike = NULL_SPAN):
        start = self.vm.sim.now
        span = self.vm.obs.span(
            "device.unplug",
            parent=parent,
            requested_bytes=size_bytes,
            mechanism=self.name,
        )
        dimm_bytes = self.dimm.dimm_bytes
        wanted = size_bytes // dimm_bytes
        if wanted == 0:
            # Sub-DIMM excess is unreclaimable at this granularity; not
            # a shortfall (a deferred retry could never do better).  The
            # refusal is still a resize request the hypervisor saw, so
            # it is recorded as a zero-completed instant event rather
            # than silently dropped from the tracer.
            _finish_unplug_span(self.vm, span, start, start, size_bytes, 0, 0)
            return UnplugResult(
                requested_bytes=0,
                unplugged_bytes=0,
                latency_ns=0,
                migrated_pages=0,
                scanned_blocks=0,
            )
        mech = self.vm.obs.span(
            "phase.mechanism", parent=span, op="dimm-unplug", dimms=wanted
        )
        result = yield from self.dimm.unplug(wanted * dimm_bytes)
        mech.close()
        _finish_unplug_span(
            self.vm,
            span,
            start,
            self.vm.sim.now,
            result.requested_dimms * dimm_bytes,
            result.unplugged_bytes,
            result.migrated_pages,
        )
        return UnplugResult(
            requested_bytes=result.requested_dimms * dimm_bytes,
            unplugged_bytes=result.unplugged_bytes,
            latency_ns=result.latency_ns,
            migrated_pages=result.migrated_pages,
            scanned_blocks=result.requested_dimms * self.dimm.blocks_per_dimm,
        )

    def check_consistency(self) -> None:
        # The virtio-mem device is bypassed entirely (blocks online
        # through the manager), so the DIMM ledger is the authority:
        # every online hotplug block must belong to a fully-online DIMM.
        manager = self.vm.manager
        online = sum(
            1
            for index in range(
                manager.boot_blocks, manager.boot_blocks + manager.hotplug_blocks
            )
            if manager.blocks[index].state is BlockState.ONLINE
        )
        accounted = len(self.dimm.plugged_dimms()) * self.dimm.blocks_per_dimm
        if online != accounted:
            raise HotplugError(
                f"{online} hotplug blocks online but {accounted} accounted "
                f"to whole DIMMs"
            )


class FprDatapath(VirtioMemDatapath):
    """Free page reporting: a statically sized VM plus a reporting loop.

    The VM never resizes (the mode is not elastic), so plug/unplug
    inherit the virtio-mem pass-through for completeness; the value of
    this datapath is the background loop that lazily returns free pages
    to the host and the retire hook that stops it before the VM's host
    account closes.
    """

    name = "fpr"

    def __init__(self, vm: "VirtualMachine", fpr: FreePageReporting):
        super().__init__(vm)
        self.fpr = fpr

    def start(self) -> None:
        """Start the reporting loop (runs until :meth:`on_retire`)."""
        self.fpr.start()

    def on_retire(self) -> None:
        self.fpr.stop()
