"""``DeploymentMode``: a thin alias over the mode registry.

The original 3-value enum survives as attribute access on this class —
``DeploymentMode.HOTMEM`` is the registered ``hotmem`` singleton, so
``.value``, ``.elastic``, iteration, hashing and ``DeploymentMode(
"hotmem")`` lookups keep working, while every mode (including the
related-work baselines and custom registrations) flows through the same
objects.  Membership *branching* on these attributes is what the
``no-mode-branching`` lint rule forbids outside this package.
"""

from __future__ import annotations

from typing import Iterator, Union

from repro.modes.base import DeploymentBackend
from repro.modes.builtin import HOTMEM, OVERPROVISIONED, VANILLA
from repro.modes.registry import get

__all__ = ["DeploymentMode"]


class _DeploymentModeMeta(type):
    """Enum-flavoured class behaviour for the alias below."""

    def __call__(cls, value: Union[str, DeploymentBackend]) -> DeploymentBackend:
        """``DeploymentMode("hotmem")`` resolves through the registry."""
        return get(value)

    def __iter__(cls) -> Iterator[DeploymentBackend]:
        """Iterate the three original modes, in enum definition order."""
        return iter((HOTMEM, VANILLA, OVERPROVISIONED))

    def __len__(cls) -> int:
        return 3

    def __getitem__(cls, key: str) -> DeploymentBackend:
        """``DeploymentMode["HOTMEM"]`` member lookup, as with an enum."""
        return {
            "HOTMEM": HOTMEM,
            "VANILLA": VANILLA,
            "OVERPROVISIONED": OVERPROVISIONED,
        }[key]

    def __instancecheck__(cls, instance: object) -> bool:
        return isinstance(instance, DeploymentBackend)


class DeploymentMode(metaclass=_DeploymentModeMeta):
    """The three configurations of Section 5.5, now registry-backed."""

    HOTMEM = HOTMEM
    VANILLA = VANILLA
    OVERPROVISIONED = OVERPROVISIONED
