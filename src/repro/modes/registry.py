"""The string-keyed deployment-mode registry.

Modes register one singleton each under a unique lowercase name;
everything that accepts a mode — ``VmSpec``, ``Agent``, experiment
configs, the ``--modes`` CLI flag — resolves it through :func:`get`,
which passes already-resolved backends straight through.  Registering a
custom mode makes it sweepable everywhere with no further wiring (see
``docs/modes.md``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple, Union

from repro.errors import ConfigError
from repro.modes.base import DeploymentBackend

__all__ = ["register", "get", "names", "registered", "resolve_modes"]

_REGISTRY: Dict[str, DeploymentBackend] = {}


def register(mode: DeploymentBackend, replace: bool = False) -> DeploymentBackend:
    """Register a mode singleton under ``mode.name``.

    Validates the declarative contract every consumer relies on; pass
    ``replace=True`` to overwrite an existing registration (tests).
    """
    name = mode.name
    if not isinstance(name, str) or not name or name != name.lower():
        raise ConfigError(f"mode name must be a non-empty lowercase string: {name!r}")
    if not 0.0 <= mode.reclaim_credit <= 1.0:
        raise ConfigError(
            f"{name}: reclaim_credit must be in [0, 1], got {mode.reclaim_credit}"
        )
    if not mode.elastic and not mode.reclaim_semantics:
        raise ConfigError(
            f"{name}: non-elastic modes must document their reclaim_semantics"
        )
    if name in _REGISTRY and not replace:
        raise ConfigError(f"mode {name!r} already registered")
    _REGISTRY[name] = mode
    return mode


def get(mode: Union[str, DeploymentBackend]) -> DeploymentBackend:
    """Resolve a mode by name; backend instances pass through."""
    if isinstance(mode, DeploymentBackend):
        return mode
    try:
        return _REGISTRY[mode]
    except (KeyError, TypeError):
        raise ConfigError(
            f"unknown deployment mode {mode!r} (registered: {', '.join(names())})"
        ) from None


def names() -> Tuple[str, ...]:
    """Registered mode names, in registration order."""
    return tuple(_REGISTRY)


def registered() -> Tuple[DeploymentBackend, ...]:
    """Registered mode singletons, in registration order."""
    return tuple(_REGISTRY.values())


def resolve_modes(
    modes: Iterable[Union[str, DeploymentBackend]],
) -> Tuple[DeploymentBackend, ...]:
    """Resolve a sweep list (config field or ``--modes`` flag)."""
    resolved = tuple(get(mode) for mode in modes)
    if not resolved:
        raise ConfigError("empty mode list")
    return resolved
