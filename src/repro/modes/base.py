"""The deployment-backend strategy interface.

A *deployment mode* bundles every policy decision that used to be
scattered across ``is DeploymentMode.X`` branches: whether the runtime
resizes the VM at all, which reclamation datapath the VM gets, how much
reclaimable memory the density arbiter may credit at admission, which
fault-injection sites apply, and which CPU-accounting labels the
datapath charges.  Modes are plain singletons registered by name in
:mod:`repro.modes.registry`; everything else in the repo handles them
uniformly through this interface.

Two objects cooperate per VM:

* the :class:`DeploymentBackend` (one singleton per mode) makes the
  spec/VM-level decisions and builds the datapath;
* the :class:`ReclaimDatapath` (one instance per VM) adapts the mode's
  reclamation mechanism — virtio-mem, balloon, DIMM hotplug, free page
  reporting — to the agent-facing plug/unplug contract, speaking
  :class:`~repro.virtio.device.PlugResult` /
  :class:`~repro.virtio.device.UnplugResult` so the agent's retry,
  degradation and deferred-reclamation machinery works unchanged for
  every mechanism.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from repro.core.config import HotMemBootParams
from repro.errors import ConfigError
from repro.faults.sites import AGENT_SITES
from repro.obs.span import NULL_SPAN, SpanLike

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.cluster.provision import VmSpec
    from repro.vmm.vm import VirtualMachine

__all__ = ["DeploymentBackend", "ReclaimDatapath"]


class ReclaimDatapath:
    """Per-VM adapter from one reclamation mechanism to plug/unplug.

    ``plug``/``unplug`` are process generators with the same contract as
    :meth:`repro.virtio.device.VirtioMemDevice.plug` /
    :meth:`~repro.virtio.device.VirtioMemDevice.unplug`: they never
    raise for refused or partial requests — outcomes travel in the
    result object so the agent's resilience path can retry, defer or
    degrade.
    """

    #: Display name (matches the owning mode's name).
    name: str = "abstract"

    @property
    def elastic_bytes(self) -> int:
        """Bytes currently provisioned to serve instances.

        The agent's sizing math (deficit on spawn, excess on recycle)
        reads this instead of ``device.plugged_bytes``: for virtio-mem
        both are the same, but a balloon VM keeps the device fully
        plugged and varies the balloon instead.
        """
        raise NotImplementedError

    def plug(self, size_bytes: int, parent: SpanLike = NULL_SPAN):
        """Process generator growing the VM; returns a ``PlugResult``.

        ``parent`` is the caller's span (e.g. the agent's ``agent.plug``)
        so the mechanism's ``device.plug`` span joins the caller's trace
        when tracing is enabled; implementations must accept and forward
        it even when they ignore tracing.
        """
        raise NotImplementedError

    def unplug(self, size_bytes: int, parent: SpanLike = NULL_SPAN):
        """Process generator shrinking the VM; returns an ``UnplugResult``."""
        raise NotImplementedError

    def check_consistency(self) -> None:
        """Cross-check guest and mechanism state (tests, sanitizer)."""
        raise NotImplementedError

    def on_retire(self) -> None:
        """Stop background machinery before the VM releases host memory."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class DeploymentBackend:
    """One deployment mode: declarative knobs plus lifecycle hooks.

    Subclasses override the class attributes (and the few hooks whose
    defaults do not fit) and register one instance under
    :attr:`name`; see :mod:`repro.modes.builtin` and
    :mod:`repro.modes.related` for the six built-ins.
    """

    #: Registry key, report string, and legacy ``.value``.
    name: str = "abstract"
    #: Whether the runtime issues plug/unplug requests in this mode.
    elastic: bool = True
    #: Admission credit in [0, 1]: the fraction of the elastic region
    #: (hotplug region minus shared bytes) the density arbiter may
    #: assume this mode gives back between bursts.
    reclaim_credit: float = 0.0
    #: Whether VMs boot the HotMem guest extension (partition manager,
    #: partition-aware backend, shared partition).
    uses_hotmem: bool = False
    #: Fault-injection sites applicable to this mode's datapath.  Modes
    #: that bypass the virtio-mem device/driver (balloon, DIMM, FPR)
    #: only expose the agent-level sites.
    fault_sites: Tuple[str, ...] = AGENT_SITES
    #: CPU-accounting labels the datapath charges on the virtio IRQ
    #: vCPU (cost-model hook: reports sum these for "datapath CPU").
    cpu_labels: Tuple[str, ...] = ()
    #: Smallest reclaimable unit (0 when resizing never reclaims, as
    #: for overprovisioned and FPR VMs).
    reclaim_granularity_bytes: int = 0
    #: One-line description of how (or why not) this mode reclaims —
    #: the contract test requires it for non-elastic modes.
    reclaim_semantics: str = ""

    # ------------------------------------------------------------------
    # Legacy enum-ish surface (DeploymentMode compatibility)
    # ------------------------------------------------------------------
    @property
    def value(self) -> str:
        """The mode's registry key (mirrors ``enum.Enum.value``)."""
        return self.name

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"<mode {self.name}>"

    # ------------------------------------------------------------------
    # Spec-level hooks (consulted by VmSpec)
    # ------------------------------------------------------------------
    def validate_spec(self, spec: "VmSpec") -> None:
        """Reject specs this mode cannot provision."""

    def round_region(self, region_bytes: int) -> int:
        """Round the device region up to this mode's plug granularity."""
        return region_bytes

    def hotmem_params_for(self, spec: "VmSpec") -> Optional[HotMemBootParams]:
        """Boot params for HotMem VMs, ``None`` for everything else."""
        return None

    # ------------------------------------------------------------------
    # VM-level hooks (consulted by Fleet and Agent)
    # ------------------------------------------------------------------
    def validate_vm(self, vm: "VirtualMachine") -> None:
        """Reject VMs whose guest wiring does not match this mode."""
        if vm.is_hotmem:
            raise ConfigError(f"{self} mode requires a vanilla VM")

    def build_datapath(self, vm: "VirtualMachine") -> ReclaimDatapath:
        """Create this mode's per-VM reclamation datapath."""
        raise NotImplementedError

    def prepare_vm(self, vm: "VirtualMachine") -> None:
        """Boot-time state setup after the datapath is installed (e.g.
        plugging the whole region for statically provisioned modes).
        Performs no simulated work."""

    def on_shutdown(self, vm: "VirtualMachine") -> None:
        """Quiesce the datapath before the VM releases its host memory."""
        vm.datapath.on_retire()

    # ------------------------------------------------------------------
    # Cost-model hooks
    # ------------------------------------------------------------------
    def datapath_cpu_ns(self, vm: "VirtualMachine") -> int:
        """CPU time the datapath charged on the virtio IRQ vCPU."""
        return sum(
            vm.irq_vcpu.busy_ns_for(label) for label in self.cpu_labels
        )
