"""Deployment modes: a pluggable backend registry.

Every way this repo can run a serverless VM — the paper's three
evaluated configurations plus the related-work baselines of Section 7 —
is a :class:`~repro.modes.base.DeploymentBackend` registered by name.
``VmSpec``/``Fleet`` provisioning, the agent's plug/unplug + resilience
path, the density arbiter and every experiment resolve modes through
:func:`get`, so a newly registered mode is immediately sweepable
everywhere (``--modes`` on the CLI).  See ``docs/modes.md``.
"""

from repro.modes.base import DeploymentBackend, ReclaimDatapath
from repro.modes.builtin import (
    HOTMEM,
    OVERPROVISIONED,
    VANILLA,
    HotMemMode,
    OverprovisionedMode,
    VanillaMode,
)
from repro.modes.compat import DeploymentMode
from repro.modes.datapaths import (
    BalloonDatapath,
    DimmDatapath,
    FprDatapath,
    VirtioMemDatapath,
)
from repro.modes.registry import get, names, register, registered, resolve_modes
from repro.modes.related import (
    BALLOON,
    DIMM,
    FPR,
    BalloonMode,
    DimmMode,
    FprMode,
)

# Aliases for the package-qualified spelling used from ``repro``:
# ``repro.get_mode("balloon")`` reads better than a bare ``get``.
get_mode = get
register_mode = register
registered_modes = registered

__all__ = [
    # interface
    "DeploymentBackend",
    "ReclaimDatapath",
    # registry
    "register",
    "register_mode",
    "get",
    "get_mode",
    "names",
    "registered",
    "registered_modes",
    "resolve_modes",
    # compat alias
    "DeploymentMode",
    # datapaths
    "VirtioMemDatapath",
    "BalloonDatapath",
    "DimmDatapath",
    "FprDatapath",
    # built-in modes
    "HotMemMode",
    "VanillaMode",
    "OverprovisionedMode",
    "BalloonMode",
    "DimmMode",
    "FprMode",
    "HOTMEM",
    "VANILLA",
    "OVERPROVISIONED",
    "BALLOON",
    "DIMM",
    "FPR",
]
