"""The three original deployment modes (Section 5.5 / Figure 9).

Ported from the ``DeploymentMode`` enum onto the backend interface with
byte-identical behaviour: the datapath is the VM's own virtio-mem
device, the admission credits are the 0 / 0.25 / 0.75 values that used
to live in ``DensityArbiter``, and the overprovisioned mode's
plug-everything-at-boot branch became its :meth:`prepare_vm` hook.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.config import HotMemBootParams
from repro.errors import ConfigError
from repro.faults.sites import DATAPATH_SITES
from repro.modes.base import DeploymentBackend
from repro.modes.datapaths import VirtioMemDatapath
from repro.modes.registry import register
from repro.units import MEMORY_BLOCK_SIZE
from repro.virtio.driver import VIRTIO_MEM_LABEL

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.cluster.provision import VmSpec
    from repro.vmm.vm import VirtualMachine

__all__ = [
    "HotMemMode",
    "VanillaMode",
    "OverprovisionedMode",
    "HOTMEM",
    "VANILLA",
    "OVERPROVISIONED",
]


class HotMemMode(DeploymentBackend):
    """HotMem-aware virtio-mem: partitions, fast unplug."""

    name = "hotmem"
    elastic = True
    reclaim_credit = 0.75
    uses_hotmem = True
    fault_sites = DATAPATH_SITES
    cpu_labels = (VIRTIO_MEM_LABEL,)
    reclaim_granularity_bytes = MEMORY_BLOCK_SIZE
    reclaim_semantics = (
        "partition-at-a-time unplug: populated partitions recycle in "
        "milliseconds without migration"
    )

    def validate_spec(self, spec: "VmSpec") -> None:
        if spec.partition_bytes <= 0 or spec.concurrency <= 0:
            raise ConfigError(
                f"{spec.name}: HOTMEM specs need a partition geometry "
                f"(partition_bytes × concurrency)"
            )

    def hotmem_params_for(self, spec: "VmSpec") -> Optional[HotMemBootParams]:
        return HotMemBootParams(
            partition_bytes=spec.partition_bytes,
            concurrency=spec.concurrency,
            shared_bytes=spec.shared_bytes,
        )

    def validate_vm(self, vm: "VirtualMachine") -> None:
        if not vm.is_hotmem:
            raise ConfigError("HOTMEM mode requires a HotMem VM")

    def build_datapath(self, vm: "VirtualMachine") -> VirtioMemDatapath:
        return VirtioMemDatapath(vm)


class VanillaMode(DeploymentBackend):
    """Stock virtio-mem: scatter allocation, migrating unplug."""

    name = "vanilla"
    elastic = True
    reclaim_credit = 0.25
    fault_sites = DATAPATH_SITES
    cpu_labels = (VIRTIO_MEM_LABEL,)
    reclaim_granularity_bytes = MEMORY_BLOCK_SIZE
    reclaim_semantics = (
        "per-block unplug through the stock driver: offline + migrate, "
        "slow and migration-limited"
    )

    def build_datapath(self, vm: "VirtualMachine") -> VirtioMemDatapath:
        return VirtioMemDatapath(vm)


class OverprovisionedMode(DeploymentBackend):
    """Statically over-provisioned VM: max memory at boot, never resized."""

    name = "overprovisioned"
    elastic = False
    reclaim_credit = 0.0
    cpu_labels = (VIRTIO_MEM_LABEL,)
    reclaim_semantics = (
        "never reclaims: the whole region is plugged at boot and the "
        "host backs it for the VM's lifetime"
    )

    def build_datapath(self, vm: "VirtualMachine") -> VirtioMemDatapath:
        return VirtioMemDatapath(vm)

    def prepare_vm(self, vm: "VirtualMachine") -> None:
        vm.plug_all_at_boot()


HOTMEM = register(HotMemMode())
VANILLA = register(VanillaMode())
OVERPROVISIONED = register(OverprovisionedMode())
