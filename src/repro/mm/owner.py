"""Page owners: anything that occupies guest physical pages.

An owner is a process address space (:class:`~repro.mm.mm_struct.MmStruct`),
the page cache, or the kernel itself.  Owners keep a mirror of which blocks
hold their pages so that freeing on exit and migration accounting are O(own
blocks) instead of O(all blocks).  The memory manager is the only code that
mutates the mirror, keeping it consistent with per-block occupancy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.errors import MemoryError_

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mm.block import MemoryBlock

__all__ = ["PageOwner", "KernelOwner"]


class PageOwner:
    """Base class for everything that can own guest physical pages.

    Parameters
    ----------
    owner_id:
        Stable unique identifier (used in accounting and diagnostics).
    movable:
        Whether this owner's pages can be migrated.  Kernel allocations
        are unmovable and pin their blocks (Section 2.2).
    """

    def __init__(self, owner_id: str, movable: bool = True):
        self.owner_id = owner_id
        self.movable = movable
        #: Mirror of per-block holdings (block → page count).
        self.block_pages: Dict["MemoryBlock", int] = {}

    @property
    def total_pages(self) -> int:
        """Total guest physical pages currently owned."""
        return sum(self.block_pages.values())

    # ------------------------------------------------------------------
    # Mirror maintenance (manager-only)
    # ------------------------------------------------------------------
    def _mirror_charge(self, block: "MemoryBlock", pages: int) -> None:
        self.block_pages[block] = self.block_pages.get(block, 0) + pages

    def _mirror_uncharge(self, block: "MemoryBlock", pages: int) -> None:
        held = self.block_pages.get(block, 0)
        if pages > held:
            raise MemoryError_(
                f"owner {self.owner_id}: mirror uncharge of {pages} exceeds {held}"
            )
        if held == pages:
            del self.block_pages[block]
        else:
            self.block_pages[block] = held - pages

    def __repr__(self) -> str:
        kind = "movable" if self.movable else "unmovable"
        return f"<PageOwner {self.owner_id} {kind} pages={self.total_pages}>"


class KernelOwner(PageOwner):
    """The guest kernel: unmovable allocations (memmap, slab, ...)."""

    def __init__(self) -> None:
        super().__init__("kernel", movable=False)
