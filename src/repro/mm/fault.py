"""Lazy allocation via page faults.

Linux allocates memory lazily when processes first touch their pages
(Section 2.2).  The fault handler is where HotMem hooks in (Section 4):

* anonymous faults of a HotMem process allocate *only* from the process's
  assigned partition zone — overflowing it triggers the OOM killer;
* file-backed faults are served from the page cache; misses allocate into
  the shared HotMem partition (HotMem) or the generic zonelist (vanilla).

Faults are batched: workloads touch regions, not single pages, and the
returned :class:`FaultCharge` carries the page counts plus the total CPU
cost so the caller can charge the right vCPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import OutOfMemory
from repro.mm.manager import GuestMemoryManager
from repro.mm.mm_struct import MmStruct
from repro.mm.oom import OomKiller
from repro.mm.pagecache import CachedFile, PageCache
from repro.mm.zone import Zone
from repro.sim.costs import CostModel, ZeroingMode

__all__ = ["FaultHandler", "FaultCharge"]


@dataclass
class FaultCharge:
    """Pages faulted in plus the CPU time the faults cost."""

    anon_pages: int = 0
    file_hit_pages: int = 0
    file_miss_pages: int = 0
    cost_ns: int = 0

    @property
    def total_pages(self) -> int:
        return self.anon_pages + self.file_hit_pages + self.file_miss_pages


class FaultHandler:
    """Services anonymous and file faults for one guest."""

    def __init__(
        self,
        manager: GuestMemoryManager,
        costs: CostModel,
        page_cache: Optional[PageCache] = None,
        oom_killer: Optional[OomKiller] = None,
        shared_file_zones: Optional[Sequence[Zone]] = None,
    ):
        """``shared_file_zones`` overrides where cache misses are allocated
        (HotMem points it at the shared partition)."""
        self.manager = manager
        self.costs = costs
        self.page_cache = page_cache or PageCache()
        self.oom_killer = oom_killer or OomKiller()
        self.shared_file_zones = (
            list(shared_file_zones) if shared_file_zones is not None else None
        )

    # ------------------------------------------------------------------
    # Anonymous faults
    # ------------------------------------------------------------------
    def fault_anon(self, mm: MmStruct, pages: int) -> FaultCharge:
        """Touch ``pages`` new anonymous pages of ``mm``.

        Raises :class:`OutOfMemory` after recording an OOM kill when a
        HotMem process overflows its partition (the paper's isolation
        enforcement) or when the generic zones are exhausted.
        """
        if pages == 0:
            return FaultCharge()
        partition = mm.hotmem_partition
        if partition is not None:
            zones: Sequence[Zone] = [partition.zone]
        else:
            zones = self.manager.zonelist(movable=True, node=mm.numa_node)
        try:
            self.manager.alloc_pages(mm, pages, zones=zones)
        except OutOfMemory:
            reason = (
                f"partition {partition.partition_id} overflow"
                if partition is not None
                else "generic zones exhausted"
            )
            self.oom_killer.kill(mm, reason, requested_pages=pages)
            raise
        cost = pages * self.costs.anon_fault_ns
        if self.costs.zeroing_mode == ZeroingMode.INIT_ON_ALLOC:
            cost += self.costs.zero_pages_ns(pages)
        return FaultCharge(anon_pages=pages, cost_ns=cost)

    # ------------------------------------------------------------------
    # File-backed faults
    # ------------------------------------------------------------------
    def fault_file(self, mm: MmStruct, file: CachedFile, pages: int) -> FaultCharge:
        """Map ``pages`` of ``file`` into ``mm`` (faulting misses in once).

        Cache hits are cheap map-ins; misses do I/O and allocate cache
        pages in the shared zones.  Either way the pages stay owned by the
        page cache and are merely recorded as mapped in ``mm``.
        """
        if pages == 0:
            return FaultCharge()
        outcome = self.page_cache.plan_mapping(file, pages)
        if outcome.miss_pages:
            zones = (
                self.shared_file_zones
                if self.shared_file_zones is not None
                else self.manager.zonelist(movable=True)
            )
            self.manager.alloc_pages(self.page_cache, outcome.miss_pages, zones=zones)
            self.page_cache.commit_misses(file, outcome.miss_pages)
        mm.record_file_mapping(file.file_id, outcome.total_pages)
        cost = (
            outcome.hit_pages * self.costs.file_fault_cached_ns
            + outcome.miss_pages * self.costs.file_fault_uncached_ns
        )
        return FaultCharge(
            file_hit_pages=outcome.hit_pages,
            file_miss_pages=outcome.miss_pages,
            cost_ns=cost,
        )

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def release_address_space(self, mm: MmStruct) -> FaultCharge:
        """Free every private page of ``mm`` on exit; returns the charge.

        Shared (file) pages stay in the cache — that is the point of the
        N:1 model.  Under ``init_on_free`` the freed pages must be zeroed.
        """
        pages = self.manager.free_all(mm)
        mm.file_mapped_pages.clear()
        mm.alive = False
        cost = pages * self.costs.page_free_ns
        if self.costs.zeroing_mode == ZeroingMode.INIT_ON_FREE:
            cost += self.costs.zero_pages_ns(pages)
        return FaultCharge(anon_pages=pages, cost_ns=cost)
