"""Memory zones.

Linux segregates physical memory into zones; the two that matter here are
``ZONE_NORMAL`` (may hold unmovable kernel data) and ``ZONE_MOVABLE``
(movable-only, guaranteeing offline can succeed — Section 2.2).  HotMem
adds ``ZONE_HOTMEM`` partition zones (Section 4): movable-only zones that
are excluded from the generic allocation path and serve exactly one
function instance each.
"""

from __future__ import annotations

import enum
from bisect import insort
from typing import Dict, List, Optional, Set

from repro.errors import MemoryError_, OutOfMemory
from repro.mm.block import BlockState, MemoryBlock
from repro.mm.owner import PageOwner
from repro.mm.placement import PlacementPolicy, ScatterPlacement
from repro.units import PAGES_PER_BLOCK, format_bytes, pages_to_bytes

__all__ = ["ZoneType", "Zone"]


class ZoneType(enum.Enum):
    """Kind of zone, deciding movability rules and allocation visibility."""

    #: May hold unmovable (kernel) allocations; fallback for movable ones.
    NORMAL = "normal"
    #: Movable-only; where hotplugged memory is onlined under vanilla.
    MOVABLE = "movable"
    #: A HotMem partition: movable-only, excluded from generic allocation.
    HOTMEM = "hotmem"


class Zone:
    """An ordered set of online memory blocks with one placement policy."""

    def __init__(
        self,
        name: str,
        ztype: ZoneType,
        placement: Optional[PlacementPolicy] = None,
    ):
        self.name = name
        self.ztype = ztype
        self.placement = placement or ScatterPlacement()
        self.blocks: List[MemoryBlock] = []
        self._free_pages = 0

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------
    @property
    def allows_unmovable(self) -> bool:
        """Whether unmovable (kernel) allocations may land here."""
        return self.ztype is ZoneType.NORMAL

    @property
    def free_pages(self) -> int:
        """Free pages across all online blocks of the zone."""
        return self._free_pages

    @property
    def total_pages(self) -> int:
        """All pages (free or occupied) in the zone."""
        return len(self.blocks) * PAGES_PER_BLOCK

    @property
    def occupied_pages(self) -> int:
        """Occupied pages across the zone."""
        return self.total_pages - self._free_pages

    @property
    def is_empty(self) -> bool:
        """Whether no page in the zone is occupied."""
        return self.occupied_pages == 0

    def free_pages_excluding(self, exclude: Set[MemoryBlock]) -> int:
        """Free pages outside the ``exclude`` set (migration headroom)."""
        return self._free_pages - sum(
            b.free_pages for b in exclude if b.zone is self and not b.isolated
        )

    # ------------------------------------------------------------------
    # Block membership
    # ------------------------------------------------------------------
    def add_block(self, block: MemoryBlock) -> None:
        """Attach an onlined block (its pages become allocatable here)."""
        if block.zone is not None:
            raise MemoryError_(f"block {block.index} already in zone {block.zone.name}")
        if block.state is not BlockState.ONLINE:
            raise MemoryError_(f"block {block.index} is not online")
        block.zone = self
        # The list stays sorted by block index; an insort is O(n) per
        # add instead of the O(n log n) re-sort this replaced (plug
        # loops add blocks one at a time).
        insort(self.blocks, block, key=lambda b: b.index)
        self._free_pages += block.free_pages

    def detach_block(self, block: MemoryBlock) -> None:
        """Remove an (empty) block from the zone during offlining."""
        if block.zone is not self:
            raise MemoryError_(f"block {block.index} not in zone {self.name}")
        if block.occupied_pages:
            raise MemoryError_(
                f"block {block.index} still has {block.occupied_pages} occupied pages"
            )
        self.blocks.remove(block)
        if not block.isolated:
            self._free_pages -= block.free_pages
        block.isolated = False
        block.zone = None

    # ------------------------------------------------------------------
    # Isolation (first step of offlining)
    # ------------------------------------------------------------------
    def isolate_block(self, block: MemoryBlock) -> None:
        """Hide a block's free pages from the allocator prior to offline."""
        if block.zone is not self:
            raise MemoryError_(f"block {block.index} not in zone {self.name}")
        if block.isolated:
            raise MemoryError_(f"block {block.index} already isolated")
        block.isolated = True
        self._free_pages -= block.free_pages

    def unisolate_block(self, block: MemoryBlock) -> None:
        """Return an isolated block's free pages to the allocator."""
        if block.zone is not self or not block.isolated:
            raise MemoryError_(f"block {block.index} is not isolated in {self.name}")
        block.isolated = False
        self._free_pages += block.free_pages

    # ------------------------------------------------------------------
    # Allocation / free
    # ------------------------------------------------------------------
    def allocate(
        self,
        owner: PageOwner,
        pages: int,
        exclude: Optional[Set[MemoryBlock]] = None,
    ) -> Dict[MemoryBlock, int]:
        """Charge ``pages`` to ``owner`` according to the placement policy.

        Raises :class:`OutOfMemory` when the zone lacks free pages, leaving
        all state untouched.
        """
        if pages <= 0:
            raise MemoryError_(f"invalid allocation of {pages} pages")
        if not owner.movable and not self.allows_unmovable:
            raise MemoryError_(
                f"zone {self.name} cannot hold unmovable owner {owner.owner_id}"
            )
        plan = self.placement.plan(self.blocks, pages, exclude)
        if plan is None:
            raise OutOfMemory(
                f"zone {self.name}: cannot allocate "
                f"{format_bytes(pages_to_bytes(pages))} "
                f"({format_bytes(pages_to_bytes(self._free_pages))} free)"
            )
        for block, count in plan.items():
            block.charge(owner, count)
            owner._mirror_charge(block, count)
            self._free_pages -= count
        return plan

    def release(self, owner: PageOwner, block: MemoryBlock, pages: int) -> None:
        """Return ``pages`` of ``owner``'s pages in ``block`` to the zone.

        Pages freed inside an isolated block stay invisible to the
        allocator (they will leave with the block at hot-remove).
        """
        if block.zone is not self:
            raise MemoryError_(f"block {block.index} not in zone {self.name}")
        block.uncharge(owner, pages)
        owner._mirror_uncharge(block, pages)
        if not block.isolated:
            self._free_pages += pages

    def __repr__(self) -> str:
        return (
            f"<Zone {self.name} ({self.ztype.value}) blocks={len(self.blocks)} "
            f"free={format_bytes(pages_to_bytes(self._free_pages))}>"
        )
