"""Memory blocks: the Linux hot(un)plug granularity.

Linux manages physical memory in 4 KiB pages but adds and removes memory
in 128 MiB *memory blocks* (Section 2.2).  A block tracks how many of its
pages each owner occupies; that per-owner occupancy is exactly the state
that determines unplug cost (occupied pages must be migrated before a
block can be offlined) and is what HotMem's partitioning keeps clean.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, Optional

from repro.errors import MemoryError_
from repro.units import PAGES_PER_BLOCK

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.mm.owner import PageOwner
    from repro.mm.zone import Zone

__all__ = ["BlockState", "MemoryBlock"]


class BlockState(enum.Enum):
    """Lifecycle of a memory block as seen by the guest OS."""

    #: Not backed by (plugged) memory; invisible to the allocator.
    ABSENT = "absent"
    #: Added and onlined; its pages are available to the allocator.
    ONLINE = "online"
    #: Isolated from the allocator but metadata still present
    #: (transient state between offline and hot-remove).
    OFFLINE = "offline"


class MemoryBlock:
    """One 128 MiB guest-physical memory block.

    Attributes
    ----------
    index:
        Position in the guest physical map (block number).
    state:
        Current :class:`BlockState`.
    zone:
        The zone this block is assigned to while online.
    """

    __slots__ = ("index", "state", "zone", "free_pages", "owner_pages", "isolated")

    def __init__(self, index: int):
        self.index = index
        self.state = BlockState.ABSENT
        self.zone: Optional["Zone"] = None
        self.free_pages = 0
        #: Pages occupied per owner (owner → page count).
        self.owner_pages: Dict["PageOwner", int] = {}
        #: Whether the block's free pages are isolated from the allocator
        #: (the first step of offlining, Section 2.2).
        self.isolated = False

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------
    @property
    def occupied_pages(self) -> int:
        """Pages currently owned by someone in this block."""
        return PAGES_PER_BLOCK - self.free_pages

    @property
    def is_empty(self) -> bool:
        """Whether every page of the block is free."""
        return self.free_pages == PAGES_PER_BLOCK

    @property
    def has_unmovable(self) -> bool:
        """Whether any occupant cannot be migrated (blocks offlining)."""
        return any(not owner.movable for owner in self.owner_pages)

    @property
    def movable_occupied_pages(self) -> int:
        """Occupied pages that could be migrated out."""
        return sum(
            pages for owner, pages in self.owner_pages.items() if owner.movable
        )

    # ------------------------------------------------------------------
    # Page accounting (called only by the memory manager)
    # ------------------------------------------------------------------
    def charge(self, owner: "PageOwner", pages: int) -> None:
        """Assign ``pages`` free pages of this block to ``owner``."""
        if self.state is not BlockState.ONLINE:
            raise MemoryError_(f"block {self.index} is {self.state.value}, not online")
        if self.isolated:
            raise MemoryError_(f"block {self.index} is isolated for offlining")
        if pages <= 0:
            raise MemoryError_(f"invalid charge of {pages} pages")
        if pages > self.free_pages:
            raise MemoryError_(
                f"block {self.index}: charge of {pages} pages exceeds "
                f"{self.free_pages} free"
            )
        self.free_pages -= pages
        self.owner_pages[owner] = self.owner_pages.get(owner, 0) + pages

    def uncharge(self, owner: "PageOwner", pages: int) -> None:
        """Release ``pages`` of ``owner``'s pages back to the block."""
        held = self.owner_pages.get(owner, 0)
        if pages <= 0 or pages > held:
            raise MemoryError_(
                f"block {self.index}: uncharge of {pages} pages exceeds "
                f"{held} held by {owner.owner_id}"
            )
        if held == pages:
            del self.owner_pages[owner]
        else:
            self.owner_pages[owner] = held - pages
        self.free_pages += pages

    def __repr__(self) -> str:
        zone = self.zone.name if self.zone else "-"
        return (
            f"<MemoryBlock {self.index} {self.state.value} zone={zone} "
            f"free={self.free_pages}/{PAGES_PER_BLOCK}>"
        )
