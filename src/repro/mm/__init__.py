"""Guest OS memory management substrate (a Linux-6.6-shaped model).

Implements the mechanisms Section 2.2 of the paper describes: 4 KiB pages
managed in 128 MiB memory blocks, zones (``NORMAL``/``MOVABLE`` plus
HotMem partition zones), lazy fault-in with pluggable placement policies
(whose interleaving is the root cause of slow vanilla unplug), page
migration, block online/offline/hot-remove, zeroing modes, the page cache
for shared file mappings, and the OOM killer.
"""

from repro.mm.block import BlockState, MemoryBlock
from repro.mm.fault import FaultCharge, FaultHandler
from repro.mm.manager import (
    MEMMAP_PAGES_PER_BLOCK,
    GuestMemoryManager,
    MigrationOutcome,
)
from repro.mm.mm_struct import MmStruct
from repro.mm.oom import OomEvent, OomKiller
from repro.mm.owner import KernelOwner, PageOwner
from repro.mm.pagecache import CachedFile, FileFaultOutcome, PageCache
from repro.mm.placement import (
    PlacementPolicy,
    RandomPlacement,
    ScatterPlacement,
    SequentialPlacement,
    make_placement,
)
from repro.mm.zone import Zone, ZoneType

__all__ = [
    "BlockState",
    "MemoryBlock",
    "FaultCharge",
    "FaultHandler",
    "GuestMemoryManager",
    "MigrationOutcome",
    "MEMMAP_PAGES_PER_BLOCK",
    "MmStruct",
    "OomEvent",
    "OomKiller",
    "KernelOwner",
    "PageOwner",
    "CachedFile",
    "FileFaultOutcome",
    "PageCache",
    "PlacementPolicy",
    "ScatterPlacement",
    "SequentialPlacement",
    "RandomPlacement",
    "make_placement",
    "Zone",
    "ZoneType",
]
