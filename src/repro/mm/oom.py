"""The OOM killer.

HotMem applies each function's user-set memory limit through its partition
size: a process that tries to outgrow its partition is killed by the OOM
killer rather than being allowed to violate partition isolation
(Section 4).  For global (non-partition) OOM the classic largest-RSS
victim policy applies.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.errors import MemoryError_
from repro.mm.mm_struct import MmStruct

__all__ = ["OomKiller", "OomEvent"]


class OomEvent:
    """Record of one OOM kill, for diagnostics and tests."""

    __slots__ = ("victim", "reason", "requested_pages")

    def __init__(self, victim: MmStruct, reason: str, requested_pages: int):
        self.victim = victim
        self.reason = reason
        self.requested_pages = requested_pages

    def __repr__(self) -> str:
        return f"<OomEvent victim={self.victim.owner_id} reason={self.reason!r}>"


class OomKiller:
    """Selects and records OOM victims.

    Parameters
    ----------
    on_kill:
        Callback invoked with each :class:`OomEvent` (the container layer
        uses it to tear the victim's sandbox down).
    """

    def __init__(self, on_kill: Optional[Callable[[OomEvent], None]] = None):
        self.events: List[OomEvent] = []
        self._on_kill = on_kill

    def kill(self, victim: MmStruct, reason: str, requested_pages: int) -> OomEvent:
        """Record the kill of a specific victim (partition-overflow path)."""
        event = OomEvent(victim, reason, requested_pages)
        victim.alive = False
        self.events.append(event)
        if self._on_kill is not None:
            self._on_kill(event)
        return event

    def select_victim(self, candidates: Iterable[MmStruct]) -> MmStruct:
        """Largest-RSS victim selection for global OOM."""
        alive = [mm for mm in candidates if mm.alive]
        if not alive:
            raise MemoryError_("OOM with no killable process")
        return max(alive, key=lambda mm: (mm.rss_pages, -mm.pid))

    @property
    def kill_count(self) -> int:
        """Number of kills recorded so far."""
        return len(self.events)
