"""Physical page placement policies.

The key indirect cause of slow vanilla unplug (Section 2.2) is *where* the
allocator places pages: Linux serves page faults from mixed per-zone free
lists, scattering each process's footprint across many memory blocks and
interleaving it with other processes.  We model that with pluggable
placement policies:

* :class:`ScatterPlacement` (default) — chunked round-robin over all blocks
  with free pages, starting from a rotating cursor.  Successive allocations
  by different processes interleave across blocks, reproducing Figure 2.
* :class:`SequentialPlacement` — first-fit lowest block; the best case for
  vanilla unplug (used as an ablation bound).
* :class:`RandomPlacement` — uniformly random block per chunk.

A policy *plans* an allocation over candidate blocks; the zone then applies
the plan.  Plans are deterministic given the policy state and RNG stream.
"""

from __future__ import annotations

import random  # Random is only referenced as a type; draws go through make_rng
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set

from repro.sim.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mm.block import MemoryBlock

__all__ = [
    "PlacementPolicy",
    "ScatterPlacement",
    "SequentialPlacement",
    "RandomPlacement",
    "make_placement",
]

#: Allocation chunk used by scatter/random policies (256 pages = 1 MiB).
#: Real free lists hand out runs of pages, not single pages; chunking also
#: keeps planning cost low for multi-GiB allocations.
DEFAULT_CHUNK_PAGES = 256


class PlacementPolicy:
    """Strategy deciding which blocks serve an allocation."""

    name = "abstract"

    def plan(
        self,
        blocks: List["MemoryBlock"],
        pages: int,
        exclude: Optional[Set["MemoryBlock"]] = None,
    ) -> Optional[Dict["MemoryBlock", int]]:
        """Distribute ``pages`` over ``blocks``.

        Returns a block → page-count map, or ``None`` if the non-excluded
        blocks do not hold enough free pages.  Must not mutate the blocks.
        """
        raise NotImplementedError

    @staticmethod
    def _usable(
        blocks: Iterable["MemoryBlock"], exclude: Optional[Set["MemoryBlock"]]
    ) -> List["MemoryBlock"]:
        excluded = exclude or set()
        return [
            b
            for b in blocks
            if b.free_pages > 0 and not b.isolated and b not in excluded
        ]


class SequentialPlacement(PlacementPolicy):
    """First-fit: fill the lowest-index block completely before the next."""

    name = "sequential"

    def plan(self, blocks, pages, exclude=None):
        usable = self._usable(blocks, exclude)
        plan: Dict["MemoryBlock", int] = {}
        remaining = pages
        for block in usable:
            if remaining == 0:
                break
            take = min(block.free_pages, remaining)
            plan[block] = take
            remaining -= take
        if remaining > 0:
            return None
        return plan


class ScatterPlacement(PlacementPolicy):
    """Chunked round-robin with a rotating cursor.

    Models the steady-state interleaving produced by Linux free lists: the
    cursor persists across allocations, so consecutive allocations by
    different owners land on different blocks.
    """

    name = "scatter"

    def __init__(self, chunk_pages: int = DEFAULT_CHUNK_PAGES):
        if chunk_pages <= 0:
            raise ValueError("chunk_pages must be positive")
        self.chunk_pages = chunk_pages
        self._cursor = 0

    def plan(self, blocks, pages, exclude=None):
        usable = self._usable(blocks, exclude)
        if not usable:
            return None
        if sum(b.free_pages for b in usable) < pages:
            return None
        plan: Dict["MemoryBlock", int] = {}
        remaining_free = {b: b.free_pages for b in usable}
        remaining = pages
        index = self._cursor % len(usable)
        while remaining > 0:
            block = usable[index]
            free = remaining_free[block]
            if free > 0:
                take = min(self.chunk_pages, free, remaining)
                plan[block] = plan.get(block, 0) + take
                remaining_free[block] = free - take
                remaining -= take
            index = (index + 1) % len(usable)
        self._cursor = index
        return plan


class RandomPlacement(PlacementPolicy):
    """Uniformly random block per chunk (worst-case fragmentation)."""

    name = "random"

    def __init__(
        self, rng: Optional[random.Random] = None, chunk_pages: int = DEFAULT_CHUNK_PAGES
    ):
        # Default to the seeded stream machinery so even an unconfigured
        # policy stays deterministic and auditable (seed 0, named stream).
        self.rng = rng if rng is not None else make_rng(0, "placement/random")
        self.chunk_pages = chunk_pages

    def plan(self, blocks, pages, exclude=None):
        usable = self._usable(blocks, exclude)
        if sum(b.free_pages for b in usable) < pages:
            return None
        plan: Dict["MemoryBlock", int] = {}
        remaining_free = {b: b.free_pages for b in usable}
        candidates = list(usable)
        remaining = pages
        while remaining > 0:
            block = self.rng.choice(candidates)
            free = remaining_free[block]
            take = min(self.chunk_pages, free, remaining)
            if take > 0:
                plan[block] = plan.get(block, 0) + take
                remaining_free[block] = free - take
                remaining -= take
            if remaining_free[block] == 0:
                candidates.remove(block)
        return plan


def make_placement(
    name: str, rng: Optional[random.Random] = None
) -> PlacementPolicy:
    """Factory used by configuration objects (``scatter``/``sequential``/``random``)."""
    if name == ScatterPlacement.name:
        return ScatterPlacement()
    if name == SequentialPlacement.name:
        return SequentialPlacement()
    if name == RandomPlacement.name:
        return RandomPlacement(rng=rng)
    raise ValueError(f"unknown placement policy {name!r}")
