"""The guest page cache for file-backed (shared) mappings.

Function instances in the N:1 model share their runtime and language
dependencies: the guest faults each library page in once and then maps it
into every instance that touches it (Sections 2.1, 4).  The cache is a
single movable page owner; under HotMem its pages live in the dedicated
shared partition, under vanilla they live in the generic movable zones.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict

from repro.errors import MemoryError_
from repro.mm.owner import PageOwner

__all__ = ["CachedFile", "PageCache", "FileFaultOutcome", "reset_file_ids"]

_file_id_counter = itertools.count(1)


def reset_file_ids() -> None:
    """Restart file-id allocation at 1 (a fresh simulation run)."""
    global _file_id_counter
    _file_id_counter = itertools.count(1)


class CachedFile:
    """One file (library, runtime image, ...) that can be mapped.

    Attributes
    ----------
    name:
        Label, e.g. ``"libpython"`` or ``"cnn-model"``.
    size_pages:
        Total file size in pages.
    cached_pages:
        Pages currently resident in the page cache.
    """

    def __init__(self, name: str, size_pages: int):
        if size_pages < 0:
            raise MemoryError_(f"invalid file size {size_pages}")
        self.file_id = next(_file_id_counter)
        self.name = name
        self.size_pages = size_pages
        self.cached_pages = 0

    @property
    def uncached_pages(self) -> int:
        """Pages that would miss the cache on first touch."""
        return self.size_pages - self.cached_pages

    def __repr__(self) -> str:
        return (
            f"<CachedFile {self.name} cached={self.cached_pages}/{self.size_pages}p>"
        )


@dataclass
class FileFaultOutcome:
    """What servicing a file mapping fault required."""

    #: Pages that were already cached (cheap map-in).
    hit_pages: int = 0
    #: Pages newly brought into the cache (I/O + allocation).
    miss_pages: int = 0

    @property
    def total_pages(self) -> int:
        return self.hit_pages + self.miss_pages


class PageCache(PageOwner):
    """The page-cache owner: holds every cached file page in the guest."""

    def __init__(self) -> None:
        super().__init__("pagecache", movable=True)
        self.files: Dict[int, CachedFile] = {}

    def register(self, file: CachedFile) -> CachedFile:
        """Make a file known to this cache (idempotent per file object)."""
        self.files[file.file_id] = file
        return file

    def plan_mapping(self, file: CachedFile, pages: int) -> FileFaultOutcome:
        """Split a mapping request into cache hits and misses.

        ``pages`` is the portion of the file the process touches.  The
        cache caches from the start of the file, so a request for the first
        N pages hits whatever prefix is resident.
        """
        if file.file_id not in self.files:
            raise MemoryError_(f"file {file.name} not registered with this cache")
        pages = min(pages, file.size_pages)
        hits = min(pages, file.cached_pages)
        misses = pages - hits
        return FileFaultOutcome(hit_pages=hits, miss_pages=misses)

    def commit_misses(self, file: CachedFile, miss_pages: int) -> None:
        """Record that ``miss_pages`` were faulted in (after allocation)."""
        if miss_pages < 0 or file.cached_pages + miss_pages > file.size_pages:
            raise MemoryError_(
                f"file {file.name}: cannot cache {miss_pages} more pages "
                f"({file.cached_pages}/{file.size_pages} cached)"
            )
        file.cached_pages += miss_pages

    @property
    def cached_pages_total(self) -> int:
        """Resident cache pages across all files (= owned pages)."""
        return sum(f.cached_pages for f in self.files.values())

    def __repr__(self) -> str:
        return f"<PageCache files={len(self.files)} pages={self.total_pages}>"
