"""The guest memory manager: zones, allocation, migration, hot(un)plug.

This is the state machine whose behaviour determines everything the paper
measures.  It is deliberately *state-only*: operations return page counts
(allocated, migrated, zeroed) and the timing layers above (virtio driver,
fault handler) convert those counts into CPU-nanoseconds with the
:class:`~repro.sim.costs.CostModel` and charge them to the right vCPU.

Guest physical memory layout::

    [ boot blocks (ZONE_NORMAL) | virtio-mem device region (hotpluggable) ]

Boot memory holds the kernel (including the ``memmap`` metadata for the
maximum hotpluggable size, as in Section 5.1) and serves as fallback for
movable allocations.  Hotplugged blocks are onlined into ``ZONE_MOVABLE``
under vanilla, or into a HotMem partition zone under HotMem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigError, HotplugError, MemoryError_, OfflineFailed, OutOfMemory
from repro.mm.block import BlockState, MemoryBlock
from repro.mm.owner import KernelOwner, PageOwner
from repro.mm.placement import make_placement
from repro.mm.zone import Zone, ZoneType
from repro.units import (
    MEMORY_BLOCK_SIZE,
    PAGES_PER_BLOCK,
    bytes_to_blocks,
    format_bytes,
    pages_to_bytes,
)

__all__ = ["GuestMemoryManager", "MigrationOutcome", "MEMMAP_PAGES_PER_BLOCK"]

#: struct-page metadata per 128 MiB block: 32768 pages × 64 B = 2 MiB = 512 pages.
MEMMAP_PAGES_PER_BLOCK = (PAGES_PER_BLOCK * 64) // 4096


@dataclass
class MigrationOutcome:
    """Result of emptying a block prior to offlining it."""

    #: Occupied pages that had to be migrated out of the block.
    migrated_pages: int
    #: Blocks that received migrated pages.
    target_blocks: int


class GuestMemoryManager:
    """Zones plus the physical block map of one guest."""

    def __init__(
        self,
        boot_memory_bytes: int,
        hotplug_region_bytes: int,
        placement: str = "scatter",
        rng=None,
        kernel_extra_pages: int = 8192,
        numa_nodes: int = 1,
    ):
        """Create the guest physical map.

        Parameters
        ----------
        boot_memory_bytes:
            Memory present at boot (``ZONE_NORMAL``); must be a multiple of
            the 128 MiB block size.
        hotplug_region_bytes:
            Size of the virtio-mem device region (maximum hotpluggable).
        placement:
            Placement policy name for the generic zones
            (``scatter``/``sequential``/``random``).
        kernel_extra_pages:
            Unmovable kernel footprint beyond the ``memmap`` (slab, text,
            ...); 8192 pages = 32 MiB by default (split across nodes).
        numa_nodes:
            Guest NUMA nodes (the paper's future-work extension; HotMem
            itself stays single-node as in the paper).  Boot memory and
            the hotplug region are split evenly; each node gets its own
            ``Normal``/``Movable`` zones and zonelists fall back to the
            other nodes in distance order.
        """
        if boot_memory_bytes <= 0 or boot_memory_bytes % MEMORY_BLOCK_SIZE:
            raise ConfigError(
                f"boot memory must be a positive multiple of 128MiB, "
                f"got {format_bytes(boot_memory_bytes)}"
            )
        if hotplug_region_bytes < 0 or hotplug_region_bytes % MEMORY_BLOCK_SIZE:
            raise ConfigError(
                f"hotplug region must be a non-negative multiple of 128MiB, "
                f"got {format_bytes(hotplug_region_bytes)}"
            )
        if numa_nodes <= 0:
            raise ConfigError(f"numa_nodes must be positive, got {numa_nodes}")
        self.boot_blocks = bytes_to_blocks(boot_memory_bytes)
        self.hotplug_blocks = bytes_to_blocks(hotplug_region_bytes)
        if self.boot_blocks % numa_nodes or self.hotplug_blocks % numa_nodes:
            raise ConfigError(
                "boot and hotplug blocks must split evenly across "
                f"{numa_nodes} NUMA nodes"
            )
        self.numa_nodes = numa_nodes
        total_blocks = self.boot_blocks + self.hotplug_blocks
        self.blocks: List[MemoryBlock] = [MemoryBlock(i) for i in range(total_blocks)]

        self.kernel = KernelOwner()
        #: Blocks withdrawn from service after repeatedly failing to
        #: offline (insertion-ordered; block → reason).  Quarantined
        #: blocks stay ONLINE but isolated, so the allocator never
        #: touches them and their free pages are never double-counted.
        self._quarantined: Dict[MemoryBlock, str] = {}
        self.zones: Dict[str, Zone] = {}
        suffix = lambda n: "" if numa_nodes == 1 else f"@node{n}"  # noqa: E731
        self.normal_zones: List[Zone] = [
            self._add_zone(
                Zone(f"Normal{suffix(n)}", ZoneType.NORMAL, make_placement(placement, rng))
            )
            for n in range(numa_nodes)
        ]
        self.movable_zones: List[Zone] = [
            self._add_zone(
                Zone(f"Movable{suffix(n)}", ZoneType.MOVABLE, make_placement(placement, rng))
            )
            for n in range(numa_nodes)
        ]

        # Online the boot blocks into each node's ZONE_NORMAL.
        for index, block in enumerate(self.blocks[: self.boot_blocks]):
            block.state = BlockState.ONLINE
            block.free_pages = PAGES_PER_BLOCK
            self.normal_zones[self.node_of_block(index)].add_block(block)

        # Boot-time kernel footprint: memmap for the boot blocks plus a
        # fixed overhead, charged node-locally.  Metadata for hotplugged
        # blocks is charged when they are added (mirroring Linux hot-add).
        per_node_kernel_pages = (
            self.boot_blocks // numa_nodes * MEMMAP_PAGES_PER_BLOCK
            + kernel_extra_pages // numa_nodes
        )
        for zone in self.normal_zones:
            zone.allocate(self.kernel, per_node_kernel_pages)

    # ------------------------------------------------------------------
    # NUMA topology
    # ------------------------------------------------------------------
    @property
    def zone_normal(self) -> Zone:
        """Node 0's ``ZONE_NORMAL`` (the whole zone on single-node guests)."""
        return self.normal_zones[0]

    @property
    def zone_movable(self) -> Zone:
        """Node 0's ``ZONE_MOVABLE`` (the whole zone on single-node guests)."""
        return self.movable_zones[0]

    def node_of_block(self, index: int) -> int:
        """The NUMA node a physical block belongs to."""
        if index < self.boot_blocks:
            return index // (self.boot_blocks // self.numa_nodes)
        offset = index - self.boot_blocks
        return offset // (self.hotplug_blocks // self.numa_nodes)

    # ------------------------------------------------------------------
    # Zone management
    # ------------------------------------------------------------------
    def _add_zone(self, zone: Zone) -> Zone:
        if zone.name in self.zones:
            raise ConfigError(f"duplicate zone {zone.name}")
        self.zones[zone.name] = zone
        return zone

    def register_zone(self, zone: Zone) -> Zone:
        """Register an extra zone (used by HotMem to add partition zones)."""
        return self._add_zone(zone)

    def zonelist(self, movable: bool = True, node: int = 0) -> List[Zone]:
        """Generic allocation fallback order (HotMem zones excluded).

        Movable data prefers ``ZONE_MOVABLE`` and falls back to
        ``ZONE_NORMAL`` (Section 2.2); on NUMA guests the preferred
        node's zones come first, then the remaining nodes' in id order.
        """
        if not 0 <= node < self.numa_nodes:
            raise ConfigError(f"invalid NUMA node {node}")
        order = [node] + [n for n in range(self.numa_nodes) if n != node]
        zones: List[Zone] = []
        for n in order:
            if movable:
                zones.append(self.movable_zones[n])
            zones.append(self.normal_zones[n])
        if movable:
            # Movable zones of every node first, then normals — Linux
            # prefers any movable memory over dipping into ZONE_NORMAL.
            zones.sort(
                key=lambda z: (z.ztype is not ZoneType.MOVABLE, order.index(
                    self._zone_node(z)
                ))
            )
        return zones

    def _zone_node(self, zone: Zone) -> int:
        for n in range(self.numa_nodes):
            if zone is self.normal_zones[n] or zone is self.movable_zones[n]:
                return n
        return 0

    # ------------------------------------------------------------------
    # Allocation / free
    # ------------------------------------------------------------------
    def alloc_pages(
        self,
        owner: PageOwner,
        pages: int,
        zones: Optional[Sequence[Zone]] = None,
    ) -> int:
        """Allocate ``pages`` for ``owner`` from ``zones`` (or the zonelist).

        The allocation may be split across the zones in order.  Raises
        :class:`OutOfMemory` (without mutating anything) when the zones
        cannot satisfy it.
        """
        if pages <= 0:
            raise MemoryError_(f"invalid allocation of {pages} pages")
        zone_order = list(zones) if zones is not None else self.zonelist(owner.movable)
        available = sum(z.free_pages for z in zone_order)
        if available < pages:
            raise OutOfMemory(
                f"cannot allocate {format_bytes(pages_to_bytes(pages))} for "
                f"{owner.owner_id}: only {format_bytes(pages_to_bytes(available))} "
                f"free in {[z.name for z in zone_order]}"
            )
        remaining = pages
        for zone in zone_order:
            if remaining == 0:
                break
            take = min(remaining, zone.free_pages)
            if take > 0:
                zone.allocate(owner, take)
                remaining -= take
        assert remaining == 0
        return pages

    def free_pages(self, owner: PageOwner, pages: int) -> int:
        """Release ``pages`` of ``owner``'s pages (highest blocks first)."""
        if pages <= 0:
            raise MemoryError_(f"invalid free of {pages} pages")
        if pages > owner.total_pages:
            raise MemoryError_(
                f"{owner.owner_id} owns {owner.total_pages} pages, cannot free {pages}"
            )
        remaining = pages
        for block in sorted(
            owner.block_pages, key=lambda b: b.index, reverse=True
        ):
            if remaining == 0:
                break
            held = owner.block_pages[block]
            give = min(held, remaining)
            block.zone.release(owner, block, give)
            remaining -= give
        return pages

    def free_all(self, owner: PageOwner) -> int:
        """Release every page of ``owner`` (process exit); returns the count."""
        total = owner.total_pages
        if total:
            self.free_pages(owner, total)
        return total

    # ------------------------------------------------------------------
    # Hot(un)plug state transitions
    # ------------------------------------------------------------------
    def hotplug_block_indices(self) -> range:
        """Physical block indices belonging to the virtio-mem device region."""
        return range(self.boot_blocks, self.boot_blocks + self.hotplug_blocks)

    def online_block(self, index: int, zone: Zone) -> MemoryBlock:
        """Hot-add + online one device block into ``zone``.

        Charges the block's ``memmap`` metadata to the kernel (in
        ``ZONE_NORMAL``), makes all the block's pages allocatable in the
        target zone, and returns the block.
        """
        block = self.blocks[index]
        if index not in self.hotplug_block_indices():
            raise HotplugError(
                f"block {index} is boot memory, not hotpluggable",
                block_index=index,
            )
        if block.state is not BlockState.ABSENT:
            raise HotplugError(
                f"block {index} already {block.state.value}", block_index=index
            )
        # memmap first: if ZONE_NORMAL cannot hold the metadata, hot-add
        # fails.  Charged node-locally, falling back to the other nodes.
        node = self.node_of_block(index)
        normal_order = [self.normal_zones[node]] + [
            z for n, z in enumerate(self.normal_zones) if n != node
        ]
        self.alloc_pages(self.kernel, MEMMAP_PAGES_PER_BLOCK, zones=normal_order)
        block.state = BlockState.ONLINE
        block.free_pages = PAGES_PER_BLOCK
        zone.add_block(block)
        return block

    def isolate_block(self, block: MemoryBlock) -> None:
        """Hide a block's free pages from the allocator (pre-offline)."""
        if block.zone is None:
            raise OfflineFailed(
                f"block {block.index} is not in any zone",
                block_index=block.index,
            )
        block.zone.isolate_block(block)

    def unisolate_block(self, block: MemoryBlock) -> None:
        """Abort an offline attempt: make the block allocatable again."""
        if block.zone is None:
            raise OfflineFailed(
                f"block {block.index} is not in any zone",
                block_index=block.index,
            )
        if block in self._quarantined:
            raise OfflineFailed(
                f"block {block.index} is quarantined "
                f"({self._quarantined[block]}); release it first",
                block_index=block.index,
            )
        block.zone.unisolate_block(block)

    # ------------------------------------------------------------------
    # Quarantine (graceful degradation for blocks that will not offline)
    # ------------------------------------------------------------------
    def quarantine_block(self, block: MemoryBlock, reason: str = "") -> None:
        """Withdraw a block from service after repeated offline failures.

        The block stays ONLINE (its memory is still charged to the host)
        but is isolated, so the placement policies never allocate from
        it and its free pages drop out of the zone's free counter.  The
        deferred-reclamation machinery gives up on quarantined blocks;
        :meth:`release_quarantine` returns one to service.  Idempotent.
        """
        if block.state is not BlockState.ONLINE or block.zone is None:
            raise OfflineFailed(
                f"cannot quarantine block {block.index}: "
                f"state={block.state.value}",
                block_index=block.index,
            )
        if block in self._quarantined:
            return
        if not block.isolated:
            block.zone.isolate_block(block)
        self._quarantined[block] = reason or "offline-failures"

    def release_quarantine(self, block: MemoryBlock) -> None:
        """Return a quarantined block to allocator service."""
        if block not in self._quarantined:
            raise OfflineFailed(
                f"block {block.index} is not quarantined",
                block_index=block.index,
            )
        del self._quarantined[block]
        block.zone.unisolate_block(block)

    def is_quarantined(self, block: MemoryBlock) -> bool:
        """Whether ``block`` is currently quarantined."""
        return block in self._quarantined

    @property
    def quarantined_blocks(self) -> List[MemoryBlock]:
        """Quarantined blocks in quarantine order."""
        return list(self._quarantined)

    def migrate_block_out(
        self, block: MemoryBlock, target_zones: Optional[Sequence[Zone]] = None
    ) -> MigrationOutcome:
        """Empty ``block`` by migrating its occupied pages elsewhere.

        Raises :class:`OfflineFailed` if the block holds unmovable pages or
        the target zones lack headroom.  On success the block is empty and
        every owner's mirror reflects the new placement.
        """
        if block.state is not BlockState.ONLINE:
            raise OfflineFailed(
                f"block {block.index} is {block.state.value}",
                block_index=block.index,
            )
        if block.has_unmovable:
            raise OfflineFailed(
                f"block {block.index} holds unmovable kernel pages",
                block_index=block.index,
            )
        occupied = block.occupied_pages
        if occupied == 0:
            return MigrationOutcome(migrated_pages=0, target_blocks=0)
        zone_order = (
            list(target_zones) if target_zones is not None else self.zonelist(True)
        )
        exclude = {block}
        headroom = sum(z.free_pages_excluding(exclude) for z in zone_order)
        if headroom < occupied:
            raise OfflineFailed(
                f"block {block.index}: need to migrate {occupied} pages but only "
                f"{headroom} pages of headroom in {[z.name for z in zone_order]}",
                block_index=block.index,
            )
        touched_blocks = set()
        for owner, pages in list(block.owner_pages.items()):
            remaining = pages
            for zone in zone_order:
                if remaining == 0:
                    break
                take = min(remaining, zone.free_pages_excluding(exclude))
                if take > 0:
                    plan = zone.allocate(owner, take, exclude=exclude)
                    touched_blocks.update(plan)
                    remaining -= take
            assert remaining == 0
            block.zone.release(owner, block, pages)
        return MigrationOutcome(
            migrated_pages=occupied, target_blocks=len(touched_blocks)
        )

    def offline_and_remove(
        self,
        block: MemoryBlock,
        migrate: bool = True,
        target_zones: Optional[Sequence[Zone]] = None,
    ) -> MigrationOutcome:
        """Offline ``block`` and hot-remove it (back to ``ABSENT``).

        With ``migrate=False`` the block must already be empty (the HotMem
        fast path); otherwise occupied pages are migrated out first (the
        vanilla path).  The block's ``memmap`` metadata is released.
        """
        if block.state is not BlockState.ONLINE:
            raise OfflineFailed(
                f"block {block.index} is {block.state.value}",
                block_index=block.index,
            )
        if block in self._quarantined:
            raise OfflineFailed(
                f"block {block.index} is quarantined "
                f"({self._quarantined[block]})",
                block_index=block.index,
            )
        if migrate:
            outcome = self.migrate_block_out(block, target_zones)
        else:
            if block.occupied_pages:
                raise OfflineFailed(
                    f"block {block.index} has {block.occupied_pages} occupied pages "
                    f"and migrate=False",
                    block_index=block.index,
                )
            outcome = MigrationOutcome(migrated_pages=0, target_blocks=0)
        block.zone.detach_block(block)
        block.state = BlockState.ABSENT
        block.free_pages = 0
        self.free_pages(self.kernel, MEMMAP_PAGES_PER_BLOCK)
        return outcome

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def online_blocks_in(self, zone: Zone) -> List[MemoryBlock]:
        """The zone's online blocks, ascending by physical index."""
        return list(zone.blocks)

    @property
    def online_bytes(self) -> int:
        """Memory currently visible to the guest (boot + plugged)."""
        online = sum(1 for b in self.blocks if b.state is BlockState.ONLINE)
        return online * MEMORY_BLOCK_SIZE

    @property
    def plugged_bytes(self) -> int:
        """Hotplugged memory currently online (excludes boot memory)."""
        online = sum(
            1
            for i in self.hotplug_block_indices()
            if self.blocks[i].state is BlockState.ONLINE
        )
        return online * MEMORY_BLOCK_SIZE

    @property
    def free_pages_total(self) -> int:
        """Free pages across every zone (including HotMem partitions)."""
        return sum(zone.free_pages for zone in self.zones.values())

    def check_consistency(self) -> None:
        """Verify cross-structure invariants (used by tests and debugging).

        Delegates to the invariant registry in
        :mod:`repro.analysis.invariants` — the same named rules the
        runtime sanitizer sweeps at checkpoints — and raises
        :class:`~repro.analysis.invariants.InvariantViolation` (a
        :class:`MemoryError_`) carrying a per-block report when any
        structure disagrees.
        """
        from repro.analysis.invariants import check_now  # local: analysis imports mm

        check_now(self, hotmem=getattr(self, "_hotmem_context", None))

    def __repr__(self) -> str:
        return (
            f"<GuestMemoryManager online={format_bytes(self.online_bytes)} "
            f"zones={list(self.zones)}>"
        )
