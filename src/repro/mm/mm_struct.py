"""Process address spaces (``mm_struct``).

Linux represents each process's address space with a memory descriptor;
HotMem adds a field to it storing the assigned partition id (Section 4).
Here an :class:`MmStruct` is a page owner whose anonymous pages are
confined to its HotMem partition when one is assigned, and it tracks how
many shared (file-backed) pages it has mapped for footprint reporting.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.partition import HotMemPartition

from repro.mm.owner import PageOwner

__all__ = ["MmStruct", "reset_pid_counter"]

_pid_counter = itertools.count(1)


def reset_pid_counter() -> None:
    """Restart pid allocation at 1 (a fresh simulation run).

    Pids are documented unique *per run*; the sweep runner resets them
    before every cell so that a cell's owner labels do not depend on
    which process — or how many prior cells — ran before it.
    """
    global _pid_counter
    _pid_counter = itertools.count(1)


class MmStruct(PageOwner):
    """The memory descriptor of one simulated process.

    Attributes
    ----------
    pid:
        Process id (unique per simulation run).
    name:
        Human-readable label (e.g. ``"memhog-3"`` or ``"cnn-container-7"``).
    hotmem_partition:
        The HotMem partition serving this process's anonymous allocations,
        or ``None`` for a vanilla process (allocates from generic zones).
    """

    def __init__(self, name: str, pid: Optional[int] = None, numa_node: int = 0):
        self.pid = pid if pid is not None else next(_pid_counter)
        super().__init__(f"pid{self.pid}:{name}")
        self.name = name
        #: Preferred guest NUMA node for this process's allocations.
        self.numa_node = numa_node
        self.hotmem_partition: Optional["HotMemPartition"] = None
        #: Shared file pages mapped into this address space (not owned;
        #: the page cache owns them).
        self.file_mapped_pages: Dict[int, int] = {}
        self.alive = True

    @property
    def anon_pages(self) -> int:
        """Private (anonymous) pages owned by this process."""
        return self.total_pages

    @property
    def mapped_file_pages(self) -> int:
        """Shared file pages mapped (owned by the page cache)."""
        return sum(self.file_mapped_pages.values())

    @property
    def rss_pages(self) -> int:
        """Resident set: private pages plus mapped shared pages."""
        return self.anon_pages + self.mapped_file_pages

    def record_file_mapping(self, file_id: int, pages: int) -> None:
        """Note that ``pages`` of file ``file_id`` are now mapped here."""
        self.file_mapped_pages[file_id] = (
            self.file_mapped_pages.get(file_id, 0) + pages
        )

    def __repr__(self) -> str:
        partition = (
            self.hotmem_partition.partition_id
            if self.hotmem_partition is not None
            else None
        )
        return (
            f"<MmStruct {self.owner_id} anon={self.anon_pages}p "
            f"file={self.mapped_file_pages}p partition={partition}>"
        )
