"""Windowed SLO burn-rate monitors over the invocation stream.

:class:`SloMonitor` is the continuous-monitoring half of the obs
stack: a simulator process that tails a router's completed
:class:`~repro.faas.records.InvocationRecord` stream, folds successful
latencies into a mergeable :class:`~repro.obs.sketch.QuantileSketch`,
and buckets every completion into fixed-width *error-budget windows*
per :class:`SloSpec`.  When a window closes, its **burn rate** is

    burn = (bad / total) / budget

— how many times faster than allowed the window spent its error
budget.  A window with ``burn >= burn_threshold`` (and at least
``min_requests`` completions) is a *breach*: the monitor emits an
``slo.breach`` span covering exactly the window (parented under one
long-lived ``slo.monitor`` root span) and bumps the labeled
``slo.breach_total`` counter, so breaches land in the exported trace
next to the rollups and sketches that explain them.

Two SLO kinds ship:

- ``latency`` — bad means the invocation failed or its end-to-end
  latency exceeded ``objective_ns``.
- ``cold-start`` — bad means the invocation cold-started.

Everything is driven by the simulated clock and the deterministic
record stream, so breach windows are byte-identical across reruns and
worker counts.  Experiments call :meth:`SloMonitor.finish` after the
router drains: it ingests the tail, closes every remaining window at
known instants, and closes the root span — keeping the ``--trace``
open-span gate at zero without relying on run-cut hygiene.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.obs.session import context_for
from repro.obs.sketch import QuantileSketch
from repro.sim.engine import Process, Simulator, Timeout
from repro.units import SEC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.routing import TraceRouter

__all__ = ["SloMonitor", "SloSpec", "SloWindow", "fleet_slo_specs"]

#: Valid ``SloSpec.kind`` values.
SLO_KINDS = ("latency", "cold-start")


@dataclass(frozen=True)
class SloSpec:
    """One objective: what counts as bad, and how much bad is budgeted."""

    name: str
    kind: str = "latency"
    #: Latency threshold (``latency`` kind only); ignored for cold-start.
    objective_ns: int = 0
    #: Allowed bad fraction per window (the error budget).
    budget: float = 0.01
    window_ns: int = 8 * SEC
    #: Breach when the window burns its budget this many times over.
    burn_threshold: float = 1.0
    #: Windows with fewer completions than this never breach.
    min_requests: int = 1

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise ValueError(
                f"{self.name}: unknown SLO kind {self.kind!r} "
                f"(expected one of {SLO_KINDS})"
            )
        if not 0 < self.budget <= 1:
            raise ValueError(f"{self.name}: budget must be in (0, 1]")
        if self.window_ns <= 0:
            raise ValueError(f"{self.name}: window must be positive")


def fleet_slo_specs(
    latency_objective_ns: int,
    window_ns: int = 8 * SEC,
    latency_budget: float = 0.01,
    cold_budget: float = 0.25,
    min_requests: int = 10,
) -> Tuple[SloSpec, SloSpec]:
    """The standard fleet pair: a latency SLO and a cold-start SLO.

    A P99-style latency objective budgets 1% bad per window; cold
    starts budget 25% — keepalive is supposed to absorb the rest."""
    return (
        SloSpec(
            name="latency",
            kind="latency",
            objective_ns=latency_objective_ns,
            budget=latency_budget,
            window_ns=window_ns,
            min_requests=min_requests,
        ),
        SloSpec(
            name="cold-start",
            kind="cold-start",
            budget=cold_budget,
            window_ns=window_ns,
            min_requests=min_requests,
        ),
    )


@dataclass
class SloWindow:
    """One closed error-budget window."""

    slo: str
    index: int
    start_ns: int
    end_ns: int
    bad: int
    total: int
    pressure: int
    burn: float
    breached: bool


@dataclass
class _OpenWindow:
    bad: int = 0
    total: int = 0
    pressure: int = 0


class SloMonitor:
    """Tails ``router.records`` and closes burn-rate windows on a period."""

    def __init__(
        self,
        sim: Simulator,
        router: "TraceRouter",
        specs: Sequence[SloSpec],
        period_ns: int,
        labels: Optional[Dict[str, object]] = None,
        sketch_name: str = "fleet.invocation_latency_ns",
    ) -> None:
        if period_ns <= 0:
            raise ValueError("period must be positive")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {names}")
        self.sim = sim
        self.router = router
        self.specs = tuple(specs)
        self.period_ns = period_ns
        self.labels: Dict[str, object] = dict(labels or {})
        self._obs = context_for(sim)
        self._scope = self._obs.scope(**self.labels)
        #: Successful-invocation latencies, exported and shard-merged.
        self.sketch = QuantileSketch(
            name=sketch_name, unit="ns", labels=dict(self.labels)
        )
        self._obs.register_sketch(self.sketch)
        self.windows: List[SloWindow] = []
        self._open: Dict[str, Dict[int, _OpenWindow]] = {
            spec.name: {} for spec in self.specs
        }
        self._cursor = 0
        self._root = None
        self._stop = False
        self._finished = False
        self._process: Optional[Process] = None

    # -- results -------------------------------------------------------
    @property
    def breaches(self) -> List[SloWindow]:
        return [w for w in self.windows if w.breached]

    def breach_count(self, slo: Optional[str] = None) -> int:
        return sum(
            1
            for w in self.windows
            if w.breached and (slo is None or w.slo == slo)
        )

    # -- lifecycle -----------------------------------------------------
    def start(self, until_ns: Optional[int] = None) -> Process:
        """Start the periodic tick (first flush after one period)."""
        if self._process is not None:
            raise ValueError("SLO monitor already started")
        self._root = self._scope.span(
            "slo.monitor", slo_count=len(self.specs)
        )
        self._process = self.sim.spawn(
            self._loop(until_ns), name="slo-monitor"
        )
        return self._process

    def stop(self) -> None:
        """Stop after the current period elapses."""
        self._stop = True

    def _loop(self, until_ns: Optional[int]):
        while not self._stop:
            if until_ns is not None and self.sim.now > until_ns:
                break
            self._ingest()
            self._close_elapsed(self.sim.now)
            yield Timeout(self.period_ns)
        return None

    def finish(self) -> None:
        """Drain the record tail and close every remaining window.

        Idempotent.  Partial final windows close at the simulated *now*
        instead of their nominal boundary — the run was cut there, so
        that is the last instant the window describes.
        """
        if self._finished:
            return
        self._finished = True
        self._stop = True
        self._ingest()
        now = self.sim.now
        for spec in self.specs:
            open_windows = self._open[spec.name]
            for index in sorted(open_windows):
                boundary = (index + 1) * spec.window_ns
                self._close_window(spec, index, min(boundary, now))
            open_windows.clear()
        if self._root is not None:
            self._root.close(end_ns=now, windows=len(self.windows))

    # -- pressure hook (called by Fleet._pressure_loop) ----------------
    def note_pressure(
        self, time_ns: int, host_index: int, node_id: int
    ) -> None:
        """Attribute one fleet pressure event to its open windows."""
        del host_index, node_id  # per-window counts only, for now
        for spec in self.specs:
            window = self._open[spec.name].setdefault(
                time_ns // spec.window_ns, _OpenWindow()
            )
            window.pressure += 1

    # -- internals -----------------------------------------------------
    def _ingest(self) -> None:
        records = self.router.records
        while self._cursor < len(records):
            record = records[self._cursor]
            self._cursor += 1
            if record.ok:
                self.sketch.observe(max(0, record.latency_ns))
            for spec in self.specs:
                window = self._open[spec.name].setdefault(
                    record.end_ns // spec.window_ns, _OpenWindow()
                )
                window.total += 1
                if spec.kind == "latency":
                    bad = (not record.ok) or (
                        record.latency_ns > spec.objective_ns
                    )
                else:
                    bad = record.cold
                if bad:
                    window.bad += 1

    def _close_elapsed(self, now: int) -> None:
        """Close every window whose nominal end has fully passed."""
        for spec in self.specs:
            open_windows = self._open[spec.name]
            elapsed = [
                index
                for index in sorted(open_windows)
                if (index + 1) * spec.window_ns <= now
            ]
            for index in elapsed:
                self._close_window(
                    spec, index, (index + 1) * spec.window_ns
                )
                del open_windows[index]

    def _close_window(
        self, spec: SloSpec, index: int, end_ns: int
    ) -> None:
        window = self._open[spec.name][index]
        start_ns = index * spec.window_ns
        eligible = window.total >= spec.min_requests
        burn = (
            (window.bad / window.total) / spec.budget
            if eligible and window.total
            else 0.0
        )
        breached = eligible and burn >= spec.burn_threshold
        self.windows.append(
            SloWindow(
                slo=spec.name,
                index=index,
                start_ns=start_ns,
                end_ns=end_ns,
                bad=window.bad,
                total=window.total,
                pressure=window.pressure,
                burn=burn,
                breached=breached,
            )
        )
        self._scope.observe(
            "slo.window_burn_x1000", int(burn * 1000), slo=spec.name
        )
        if breached:
            span = self._scope.span(
                "slo.breach",
                parent=self._root,
                start_ns=start_ns,
                slo=spec.name,
                kind=spec.kind,
                bad=window.bad,
                total=window.total,
                pressure=window.pressure,
                burn_x1000=int(burn * 1000),
            )
            span.close(end_ns=end_ns)
            self._scope.inc("slo.breach_total", slo=spec.name)
