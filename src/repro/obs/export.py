"""Deterministic JSONL export of spans and metrics.

One line per record, ``json.dumps(..., sort_keys=True)`` with compact
separators, spans ordered by id within each context and contexts in
creation order — so a fixed-seed run exports a byte-identical file and
its SHA-256 digest can gate CI.

Schema (see ``docs/observability.md``):

- ``{"type": "meta", "context": i, "spans": n, "metrics": m}``
- ``{"type": "span", "context": i, "id": ..., "trace": ...,
  "parent": ..., "name": ..., "start_ns": ..., "end_ns": ...,
  "attrs": {...}}``
- ``{"type": "metric", "context": i, "kind": "counter"|"gauge"|
  "histogram", "name": ..., "labels": {...}, ...}``
- ``{"type": "rollup", "context": i, "name": ..., "kind": ...,
  "labels": {...}, "width_ns": ..., "samples": ...,
  "buckets": [[start_ns, count, sum, min, max, first, last], ...]}``
- ``{"type": "sketch", "context": i, "name": ..., "unit": ...,
  "labels": {...}, "subbuckets": ..., "count": ..., "total": ...,
  "min": ..., "max": ..., "buckets": {"exp:sub": n, ...}}``

Rollup and sketch rows appear only for contexts that registered
streaming telemetry (``ObsContext.register_rollup`` /
``register_sketch``), sorted by ``(name, labels)`` within the context.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs.context import ObsContext
from repro.obs.session import ObsSession
from repro.obs.span import Span

__all__ = [
    "TraceExportSummary",
    "context_rows",
    "encode_rows",
    "export_session",
    "read_trace",
    "session_rows",
    "span_row",
    "write_rows",
]

_JSON_SCALARS = (int, float, str, bool, type(None))


def _clean_attrs(attrs: Dict[str, object]) -> Dict[str, object]:
    return {
        key: value if isinstance(value, _JSON_SCALARS) else str(value)
        for key, value in attrs.items()
    }


def span_row(context_index: int, span: Span) -> Dict[str, object]:
    """The exported JSON record for one closed span."""
    return {
        "type": "span",
        "context": context_index,
        "id": span.span_id,
        "trace": span.trace_id,
        "parent": span.parent_id,
        "name": span.name,
        "start_ns": span.start_ns,
        "end_ns": span.end_ns,
        "attrs": _clean_attrs(span.attrs),
    }


@dataclass
class TraceExportSummary:
    """What the CLI prints after ``--trace`` runs."""

    path: str
    contexts: int
    spans: int
    open_spans: int
    metric_series: int
    digest: str

    def render(self) -> str:
        return (
            f"[trace: spans={self.spans} open={self.open_spans} "
            f"metrics={self.metric_series} contexts={self.contexts} "
            f"sha256={self.digest} file={self.path}]"
        )


def context_rows(
    context: ObsContext, index: Optional[int] = None
) -> List[Dict[str, object]]:
    """One context's export records: meta, then spans by id, then metrics.

    ``index`` overrides the context's own index in the emitted rows —
    the sweep runner uses this to renumber per-cell contexts into one
    merged, globally-indexed stream.
    """
    i = context.index if index is None else index
    spans = sorted(context.tracer.spans(), key=lambda s: s.span_id)
    rows: List[Dict[str, object]] = [
        {
            "type": "meta",
            "context": i,
            "spans": len(spans),
            "metrics": context.metrics.series_count(),
        }
    ]
    rows.extend(span_row(i, span) for span in spans)
    for metric in context.metrics.snapshot():
        row: Dict[str, object] = {"type": "metric", "context": i}
        row.update(metric)
        rows.append(row)
    for body in _telemetry_rows(context):
        body["context"] = i
        rows.append(body)
    return rows


def _sorted_bodies(items) -> List[Dict[str, object]]:
    bodies = [item.to_row() for item in items]
    bodies.sort(
        key=lambda body: (
            str(body.get("name", "")),
            json.dumps(body.get("labels", {}), sort_keys=True),
        )
    )
    return bodies


def _telemetry_rows(context: ObsContext) -> List[Dict[str, object]]:
    """Registered rollup/sketch rows, sorted for byte-stable export."""
    return _sorted_bodies(context.rollups) + _sorted_bodies(context.sketches)


def session_rows(session: ObsSession) -> List[Dict[str, object]]:
    """All of a session's export records, contexts in creation order."""
    rows: List[Dict[str, object]] = []
    for context in session.contexts:
        rows.extend(context_rows(context))
    return rows


def encode_rows(rows: List[Dict[str, object]]) -> str:
    """The canonical JSONL payload for ``rows`` (digest input)."""
    lines = [
        json.dumps(row, sort_keys=True, separators=(",", ":"))
        for row in rows
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_rows(
    rows: List[Dict[str, object]],
    path: str,
    contexts: int,
    open_spans: int,
) -> TraceExportSummary:
    """Write pre-built export records as JSONL and summarise them.

    ``spans``/``metric_series`` counts are derived from the rows
    themselves; ``contexts`` and ``open_spans`` come from the caller
    (the rows of an empty context are just its meta line, and open
    spans are by design never exported).
    """
    payload = encode_rows(rows)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)
    return TraceExportSummary(
        path=path,
        contexts=contexts,
        spans=sum(1 for row in rows if row.get("type") == "span"),
        open_spans=open_spans,
        metric_series=sum(1 for row in rows if row.get("type") == "metric"),
        digest=hashlib.sha256(payload.encode()).hexdigest(),
    )


def export_session(session: ObsSession, path: str) -> TraceExportSummary:
    """Write every context's spans and metric snapshot as JSONL."""
    return write_rows(
        session_rows(session),
        path,
        contexts=len(session.contexts),
        open_spans=session.open_spans(),
    )


def read_trace(path: str) -> List[Dict[str, object]]:
    """Parse an exported JSONL trace back into records."""
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
