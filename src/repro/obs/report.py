"""Phase attribution report over an exported trace.

``python -m repro.experiments trace-report`` reads the JSONL written by
``--trace`` and answers the question the fragmented telemetry could
not: *where did the unplug latency go?*  Every ``device.unplug`` span
is tiled by its ``phase.*`` children (offline, migrate, zero, device
round-trip — ``mechanism`` for the balloon/DIMM baselines), so phase
sums match the recorded unplug latency to the nanosecond; the report
verifies that identity for every event and renders a per-mode P50/P99
breakdown plus the phase split of the exact P99 event.

Percentiles use nearest-rank (``TimeSeries.percentile``): a reported
P99 is an actual event from the run, which is what makes the "P99
phases" row well-defined.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "EvictionAttribution",
    "ModeBreakdown",
    "TraceReport",
    "UnplugAttribution",
    "build_report",
    "load_report",
]

#: Canonical phase order; unknown phases render after these.
PHASE_ORDER = ("offline", "migrate", "zero", "device", "mechanism")


@dataclass
class UnplugAttribution:
    """One ``device.unplug`` span tiled by its phase children."""

    context: int
    span_id: int
    mode: str
    vm: str
    start_ns: int
    end_ns: int
    phase_ns: Dict[str, int] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def phase_sum_ns(self) -> int:
        return sum(self.phase_ns.values())

    @property
    def exact(self) -> bool:
        """Do the phases tile the span with nanosecond-exact sums?"""
        return self.phase_sum_ns == self.duration_ns


@dataclass
class EvictionAttribution:
    """Cold starts attributed to one lifecycle policy's evictions.

    ``agent.evict`` events carry the policy name and rank that chose
    each victim; a later ``faas.spawn`` of the same function is a cold
    start that eviction re-imposed.  ``recolds`` counts evictions whose
    function cold-started again afterwards (matched earliest-first),
    and ``median_recold_ns`` is the median eviction→respawn gap — the
    warmth the policy actually gave up.
    """

    policy: str
    evictions: int
    pressure_evictions: int
    recolds: int
    median_recold_ns: int

    @property
    def recold_frac(self) -> float:
        """Fraction of evictions later paid back as a cold start."""
        return self.recolds / self.evictions if self.evictions else 0.0


@dataclass
class ModeBreakdown:
    """Per-mode unplug latency attribution."""

    mode: str
    unplugs: List[UnplugAttribution]
    p50_ns: int
    p99_ns: int
    p99_event: Optional[UnplugAttribution]
    phase_ns: Dict[str, int]

    @property
    def count(self) -> int:
        return len(self.unplugs)

    @property
    def exact_matches(self) -> int:
        return sum(1 for u in self.unplugs if u.exact)


@dataclass
class TraceReport:
    """Everything ``trace-report`` renders."""

    modes: List[ModeBreakdown]
    metric_modes: List[str]
    total_spans: int
    open_spans: int
    #: Per-policy eviction → cold-start attribution (empty when the
    #: trace holds no ``agent.evict`` events).
    eviction_policies: List[EvictionAttribution] = field(default_factory=list)

    @property
    def total_unplugs(self) -> int:
        return sum(m.count for m in self.modes)

    @property
    def exact_matches(self) -> int:
        return sum(m.exact_matches for m in self.modes)

    def render(self) -> str:
        lines = ["trace-report: unplug latency attribution by phase"]
        if not self.modes:
            lines.append("  (no device.unplug spans in this trace)")
        phases = _phase_columns(self.modes)
        if self.modes:
            header = (
                f"  {'mode':<16} {'unplugs':>7} {'p50_ms':>9} {'p99_ms':>9}"
                + "".join(f" {p + '%':>9}" for p in phases)
            )
            lines.append(header)
        for mode in self.modes:
            total = sum(mode.phase_ns.get(p, 0) for p in phases)
            shares = [
                (100.0 * mode.phase_ns.get(p, 0) / total) if total else 0.0
                for p in phases
            ]
            lines.append(
                f"  {mode.mode:<16} {mode.count:>7} "
                f"{mode.p50_ns / 1e6:>9.3f} {mode.p99_ns / 1e6:>9.3f}"
                + "".join(f" {s:>8.1f}%" for s in shares)
            )
            if mode.p99_event is not None:
                event = mode.p99_event
                parts = " ".join(
                    f"{p}={event.phase_ns.get(p, 0)}"
                    for p in phases
                    if event.phase_ns.get(p, 0)
                )
                lines.append(
                    f"    p99 event phases (ns): {parts or 'none'} "
                    f"total={event.phase_sum_ns} span={event.duration_ns}"
                )
        exact = self.exact_matches
        total = self.total_unplugs
        verdict = "nanosecond-exact" if exact == total else "MISMATCH"
        lines.append(
            f"  phase sums match unplug latencies: {exact}/{total}"
            f" ({verdict})"
        )
        if self.eviction_policies:
            lines.append("  eviction -> cold-start attribution by policy:")
            lines.append(
                f"    {'policy':<12} {'evicted':>7} {'pressure':>8} "
                f"{'recold':>6} {'recold%':>7} {'p50_gap_ms':>10}"
            )
            for policy in self.eviction_policies:
                lines.append(
                    f"    {policy.policy:<12} {policy.evictions:>7} "
                    f"{policy.pressure_evictions:>8} {policy.recolds:>6} "
                    f"{policy.recold_frac:>6.1%} "
                    f"{policy.median_recold_ns / 1e6:>10.3f}"
                )
        if self.metric_modes:
            lines.append(
                "  modes with labeled metrics: "
                + ", ".join(self.metric_modes)
            )
        lines.append(
            f"  spans={self.total_spans} open={self.open_spans}"
        )
        return "\n".join(lines)


def _phase_columns(modes: List[ModeBreakdown]) -> List[str]:
    seen = {p for m in modes for p in m.phase_ns}
    ordered = [p for p in PHASE_ORDER if p in seen]
    ordered += sorted(seen - set(PHASE_ORDER))
    return ordered


def _percentile_ns(latencies: List[int], q: float) -> int:
    """Nearest-rank percentile via ``TimeSeries.percentile``."""
    # Imported here: repro.metrics pulls in the faas layer, which must
    # stay importable before repro.obs finishes loading.
    from repro.metrics.collector import TimeSeries

    series = TimeSeries("unplug_latency_ns")
    for index, value in enumerate(latencies):
        series.record(index, value)
    return int(series.percentile(q))


def build_report(records: List[Dict[str, object]]) -> TraceReport:
    """Attribute every exported ``device.unplug`` span to its phases."""
    spans: Dict[Tuple[int, int], Dict[str, object]] = {}
    metric_modes = set()
    for record in records:
        if record.get("type") == "span":
            spans[(int(record["context"]), int(record["id"]))] = record
        elif record.get("type") == "metric":
            labels = record.get("labels") or {}
            if isinstance(labels, dict) and "mode" in labels:
                metric_modes.add(str(labels["mode"]))

    unplugs: Dict[Tuple[int, int], UnplugAttribution] = {}
    for key, record in spans.items():
        if record["name"] != "device.unplug":
            continue
        attrs = record.get("attrs") or {}
        unplugs[key] = UnplugAttribution(
            context=key[0],
            span_id=key[1],
            mode=str(attrs.get("mode", "?")),
            vm=str(attrs.get("vm", "?")),
            start_ns=int(record["start_ns"]),
            end_ns=int(record["end_ns"]),
        )

    for key, record in spans.items():
        name = str(record["name"])
        if not name.startswith("phase."):
            continue
        owner = _enclosing_unplug(spans, key)
        if owner is None:
            continue
        phase = name[len("phase."):]
        duration = int(record["end_ns"]) - int(record["start_ns"])
        attribution = unplugs[owner]
        attribution.phase_ns[phase] = (
            attribution.phase_ns.get(phase, 0) + duration
        )

    by_mode: Dict[str, List[UnplugAttribution]] = {}
    for attribution in unplugs.values():
        by_mode.setdefault(attribution.mode, []).append(attribution)

    modes: List[ModeBreakdown] = []
    for mode_name in sorted(by_mode):
        events = sorted(
            by_mode[mode_name],
            key=lambda u: (u.end_ns, u.context, u.span_id),
        )
        latencies = [u.duration_ns for u in events]
        p50 = _percentile_ns(latencies, 50.0)
        p99 = _percentile_ns(latencies, 99.0)
        p99_event = next(
            (u for u in events if u.duration_ns == p99), None
        )
        phase_totals: Dict[str, int] = {}
        for event in events:
            for phase, duration in event.phase_ns.items():
                phase_totals[phase] = phase_totals.get(phase, 0) + duration
        modes.append(
            ModeBreakdown(
                mode=mode_name,
                unplugs=events,
                p50_ns=p50,
                p99_ns=p99,
                p99_event=p99_event,
                phase_ns=phase_totals,
            )
        )

    open_spans = sum(
        1 for r in records if r.get("type") == "span" and r["end_ns"] is None
    )
    return TraceReport(
        modes=modes,
        metric_modes=sorted(metric_modes),
        total_spans=len(spans),
        open_spans=open_spans,
        eviction_policies=_attribute_evictions(spans),
    )


def _attribute_evictions(
    spans: Dict[Tuple[int, int], Dict[str, object]],
) -> List[EvictionAttribution]:
    """Join ``agent.evict`` events against later same-function spawns.

    Each eviction carries the policy and rank that chose it; the first
    ``faas.spawn`` of the same function *after* the eviction (within
    the same trace context, matched earliest-first, each spawn consumed
    once) is the cold start that eviction re-imposed.
    """
    evicts: List[Tuple[int, int, str, str, bool]] = []
    spawns: Dict[Tuple[int, str], List[int]] = {}
    for (context, _), record in spans.items():
        name = record["name"]
        attrs = record.get("attrs") or {}
        if name == "agent.evict":
            evicts.append(
                (
                    int(record["start_ns"]),
                    context,
                    str(attrs.get("policy", "?")),
                    str(attrs.get("function", "?")),
                    bool(attrs.get("pressure", False)),
                )
            )
        elif name == "faas.spawn":
            key = (context, str(attrs.get("function", "?")))
            spawns.setdefault(key, []).append(int(record["start_ns"]))
    for times in spawns.values():
        times.sort()
    evicts.sort()

    gaps: Dict[str, List[int]] = {}
    totals: Dict[str, int] = {}
    pressures: Dict[str, int] = {}
    for time_ns, context, policy, function, pressure in evicts:
        totals[policy] = totals.get(policy, 0) + 1
        if pressure:
            pressures[policy] = pressures.get(policy, 0) + 1
        pending = spawns.get((context, function), [])
        for position, spawn_ns in enumerate(pending):
            if spawn_ns > time_ns:
                gaps.setdefault(policy, []).append(spawn_ns - time_ns)
                del pending[position]
                break

    out: List[EvictionAttribution] = []
    for policy in sorted(totals):
        matched = sorted(gaps.get(policy, []))
        median = matched[len(matched) // 2] if matched else 0
        out.append(
            EvictionAttribution(
                policy=policy,
                evictions=totals[policy],
                pressure_evictions=pressures.get(policy, 0),
                recolds=len(matched),
                median_recold_ns=median,
            )
        )
    return out


def _enclosing_unplug(
    spans: Dict[Tuple[int, int], Dict[str, object]],
    key: Tuple[int, int],
) -> Optional[Tuple[int, int]]:
    """Walk parent links to the nearest ``device.unplug`` ancestor."""
    context, _ = key
    current = spans[key]
    while current is not None:
        parent_id = current.get("parent")
        if parent_id is None:
            return None
        parent_key = (context, int(parent_id))
        parent = spans.get(parent_key)
        if parent is None:
            return None
        if parent["name"] == "device.unplug":
            return parent_key
        if parent["name"] == "device.plug":
            return None
        current = parent
    return None


def load_report(path: str) -> TraceReport:
    """Read an exported JSONL trace and build its report."""
    from repro.obs.export import read_trace

    return build_report(read_trace(path))
