"""Causal spans on the simulated clock.

A :class:`Span` is one timed operation in the reclamation datapath: an
invocation, a plug/unplug request, a per-block driver phase, a fault
window.  Spans form trees through explicit ``parent`` links — in a
discrete-event simulator many processes interleave on one thread, so an
ambient "current span" stack would attribute children to whichever
process happened to run last.  Every layer therefore passes its span
down the call chain (``request_unplug(..., parent=span)``) instead of
relying on implicit context.

All timestamps come from the bound :class:`~repro.sim.engine.Simulator`
clock; span ids are sequential per tracer.  With the same seed, two runs
produce byte-identical span streams.

Opening a span never schedules a simulation event and closing one never
advances the clock, so tracing cannot perturb timing: a traced run and
an untraced run execute the exact same event sequence.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

__all__ = ["NULL_SPAN", "Span", "Tracer"]


class Span:
    """One timed, attributed operation with a causal parent link."""

    __slots__ = (
        "_tracer",
        "span_id",
        "trace_id",
        "parent_id",
        "name",
        "start_ns",
        "end_ns",
        "attrs",
    )

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        trace_id: int,
        parent_id: Optional[int],
        name: str,
        start_ns: int,
        attrs: Dict[str, object],
    ) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.name = name
        self.start_ns = start_ns
        self.end_ns: Optional[int] = None
        self.attrs = attrs

    @property
    def closed(self) -> bool:
        return self.end_ns is not None

    @property
    def duration_ns(self) -> int:
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    def set(self, **attrs: object) -> "Span":
        """Attach (or overwrite) structured attributes."""
        self.attrs.update(attrs)
        return self

    def close(self, end_ns: Optional[int] = None, **attrs: object) -> "Span":
        """Close the span (idempotent; consumers fire on the first close)."""
        if self.end_ns is not None:
            return self
        if attrs:
            self.attrs.update(attrs)
        self.end_ns = self._tracer.now if end_ns is None else end_ns
        self._tracer._finish(self)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"end={self.end_ns}" if self.closed else "open"
        return (
            f"Span(id={self.span_id} trace={self.trace_id} "
            f"name={self.name!r} start={self.start_ns} {state})"
        )


class _NullSpan:
    """Inert span: every operation is a no-op.

    ``NULL_SPAN`` is returned by disabled tracers and used as the default
    ``parent`` everywhere, so untraced runs pay one attribute check and
    no allocations.  It is safe to ``set``/``close`` and safe to pass as
    a parent (children become roots).
    """

    __slots__ = ()

    span_id = 0
    trace_id = 0
    parent_id: Optional[int] = None
    name = ""
    start_ns = 0
    end_ns: Optional[int] = 0
    closed = True
    duration_ns = 0

    @property
    def attrs(self) -> Dict[str, object]:
        return {}

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def close(self, end_ns: Optional[int] = None, **attrs: object) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NULL_SPAN"

    def __bool__(self) -> bool:
        return False


NULL_SPAN = _NullSpan()

SpanLike = Union[Span, _NullSpan]


class Tracer:
    """Factory and registry for :class:`Span` trees.

    One tracer serves one :class:`Simulator` (one fleet).  Span ids are
    dense and deterministic; ``trace_id`` is inherited from the parent
    (roots start their own trace).  Consumers registered with
    :meth:`add_consumer` see every span exactly once, at close time, in
    close order — this is how :class:`~repro.vmm.tracing.HypervisorTracer`
    and :class:`~repro.faults.recovery.RecoveryLog` are fed when tracing
    is enabled.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._sim: Optional["Simulator"] = None
        self._next_id = 1
        self._open: Dict[int, Span] = {}
        self._finished: List[Span] = []
        self._consumers: List[Callable[[Span], None]] = []

    def bind_sim(self, sim: "Simulator") -> None:
        self._sim = sim

    @property
    def now(self) -> int:
        return self._sim.now if self._sim is not None else 0

    def span(
        self,
        name: str,
        parent: Optional[SpanLike] = None,
        start_ns: Optional[int] = None,
        **attrs: object,
    ) -> SpanLike:
        """Open a span; ``parent`` may be ``None``/``NULL_SPAN`` for roots."""
        if not self.enabled:
            return NULL_SPAN
        span_id = self._next_id
        self._next_id += 1
        if isinstance(parent, Span):
            trace_id: int = parent.trace_id
            parent_id: Optional[int] = parent.span_id
        else:
            trace_id = span_id
            parent_id = None
        span = Span(
            self,
            span_id,
            trace_id,
            parent_id,
            name,
            self.now if start_ns is None else start_ns,
            dict(attrs),
        )
        self._open[span_id] = span
        return span

    def event(
        self,
        name: str,
        parent: Optional[SpanLike] = None,
        start_ns: Optional[int] = None,
        **attrs: object,
    ) -> SpanLike:
        """Open and immediately close a zero-duration (instant) span."""
        if not self.enabled:
            return NULL_SPAN
        span = self.span(name, parent=parent, start_ns=start_ns, **attrs)
        return span.close(end_ns=span.start_ns)

    def _finish(self, span: Span) -> None:
        self._open.pop(span.span_id, None)
        self._finished.append(span)
        for consumer in self._consumers:
            consumer(span)

    def add_consumer(self, consumer: Callable[[Span], None]) -> None:
        """Register a callable invoked once per span, at close time."""
        if self.enabled:
            self._consumers.append(consumer)

    def spans(self) -> List[Span]:
        """All closed spans, in close order."""
        return list(self._finished)

    def open_spans(self) -> int:
        """Number of spans opened but not yet closed."""
        return len(self._open)

    def open_span_list(self) -> List[Span]:
        return [self._open[sid] for sid in sorted(self._open)]

    def close_open(self, **attrs: object) -> int:
        """Force-close every open span (run cut short); returns the count.

        Experiments that stop at a wall-clock budget abandon in-flight
        invocations; their spans are closed here, tagged with ``attrs``
        (conventionally ``cut="run-end"``), so that after finalization
        ``open_spans() == 0`` holds for every run.
        """
        leftover = self.open_span_list()
        for span in reversed(leftover):  # children before parents
            span.close(**attrs)
        return len(leftover)
