"""``repro.obs`` — deterministic tracing and telemetry for the datapath.

End-to-end observability on the simulated clock: causal spans with
parent links (:mod:`repro.obs.span`), a unified labeled metrics
registry (:mod:`repro.obs.metrics`), the per-fleet context and the
label-stamping scopes threaded through faas/virtio/mm/modes/cluster/
faults (:mod:`repro.obs.context`), the global ``--trace`` session
(:mod:`repro.obs.session`), deterministic JSONL export
(:mod:`repro.obs.export`) and the unplug phase-attribution report
(:mod:`repro.obs.report`).

The streaming layer rides on top: bounded-memory rollup series
(:mod:`repro.obs.rollup`), mergeable quantile sketches
(:mod:`repro.obs.sketch`), windowed SLO burn-rate monitors
(:mod:`repro.obs.slo`) and the ``obs-report`` fleet dashboard
(:mod:`repro.obs.dashboard`).

Everything is opt-in: with no session installed the datapath threads
the inert ``NO_OBS``/``NO_SCOPE``/``NULL_SPAN`` singletons and runs
byte-identical to an unobserved tree.  Even when tracing is on, spans
never schedule simulation events, so the event stream — and therefore
every latency — is unchanged.
"""

from repro.obs.context import NO_OBS, NO_SCOPE, ObsContext, ObsScope
from repro.obs.dashboard import (
    ObsReport,
    build_obs_report,
    load_obs_report,
)
from repro.obs.export import (
    TraceExportSummary,
    context_rows,
    encode_rows,
    export_session,
    read_trace,
    session_rows,
    span_row,
    write_rows,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import TraceReport, build_report, load_report
from repro.obs.rollup import RollupSeries
from repro.obs.sketch import SKETCH_RELATIVE_ERROR, QuantileSketch
from repro.obs.slo import SloMonitor, SloSpec, SloWindow
from repro.obs.session import (
    ObsSession,
    context_for,
    current_session,
    install,
    is_installed,
    scoped_session,
    traced,
    uninstall,
)
from repro.obs.span import NULL_SPAN, Span, Tracer

__all__ = [
    # spans
    "Span",
    "Tracer",
    "NULL_SPAN",
    # metrics
    "MetricsRegistry",
    # context threading
    "ObsContext",
    "ObsScope",
    "NO_OBS",
    "NO_SCOPE",
    # global --trace session
    "ObsSession",
    "install",
    "uninstall",
    "is_installed",
    "current_session",
    "context_for",
    "traced",
    "scoped_session",
    # streaming telemetry
    "RollupSeries",
    "QuantileSketch",
    "SKETCH_RELATIVE_ERROR",
    "SloMonitor",
    "SloSpec",
    "SloWindow",
    # export + report
    "TraceExportSummary",
    "export_session",
    "read_trace",
    "span_row",
    "context_rows",
    "session_rows",
    "encode_rows",
    "write_rows",
    "TraceReport",
    "build_report",
    "load_report",
    "ObsReport",
    "build_obs_report",
    "load_obs_report",
]
