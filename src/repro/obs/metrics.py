"""Unified metrics registry: named counters/gauges/histograms with labels.

Replaces the ad-hoc tallies scattered through the datapath (agent
counters, tracer throughput math, fault tallies) with one queryable
registry.  Every series is identified by ``(name, sorted label set)``;
label values are coerced to strings so snapshots serialize and sort
deterministically.

Histograms are kept exact-and-small: count/sum/min/max plus power-of-two
bucket counts — enough for latency attribution without storing every
sample (the spans already carry per-operation timing).

All values come from the simulation (byte counts, sim-clock durations),
never from wall time, so a fixed seed yields a byte-identical snapshot.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["MetricsRegistry"]

SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]


class _Histogram:
    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        #: bucket exponent -> samples with value < 2**exponent (le-style)
        self.buckets: Dict[int, int] = {}

    def observe(self, value: int) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        exponent = max(0, int(value) - 1).bit_length()
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1


class MetricsRegistry:
    """Counters, gauges and histograms keyed by name + label set."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[SeriesKey, int] = {}
        self._gauges: Dict[SeriesKey, int] = {}
        self._histograms: Dict[SeriesKey, _Histogram] = {}

    @staticmethod
    def _key(name: str, labels: Dict[str, object]) -> SeriesKey:
        return name, tuple(sorted((k, str(v)) for k, v in labels.items()))

    def inc(self, name: str, value: int = 1, **labels: object) -> None:
        """Add ``value`` to the counter series ``name{labels}``."""
        if not self.enabled:
            return
        key = self._key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def gauge_set(self, name: str, value: int, **labels: object) -> None:
        """Set the gauge series ``name{labels}`` to its latest value."""
        if not self.enabled:
            return
        self._gauges[self._key(name, labels)] = value

    def observe(self, name: str, value: int, **labels: object) -> None:
        """Record one sample into the histogram series ``name{labels}``."""
        if not self.enabled:
            return
        key = self._key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = _Histogram()
        histogram.observe(value)

    def counter_value(self, name: str, **labels: object) -> int:
        return self._counters.get(self._key(name, labels), 0)

    def counter_total(self, name: str) -> int:
        """Sum of a counter across every label set."""
        return sum(v for (n, _), v in self._counters.items() if n == name)

    def gauge_value(self, name: str, **labels: object) -> Optional[int]:
        return self._gauges.get(self._key(name, labels))

    def histogram_count(self, name: str, **labels: object) -> int:
        histogram = self._histograms.get(self._key(name, labels))
        return histogram.count if histogram is not None else 0

    def label_values(self, name: str, label: str) -> List[str]:
        """Distinct values a label takes across all series of ``name``."""
        seen = set()
        for store in (self._counters, self._gauges, self._histograms):
            for series_name, labels in store:
                if series_name != name:
                    continue
                for key, value in labels:
                    if key == label:
                        seen.add(value)
        return sorted(seen)

    def series_count(self) -> int:
        return (
            len(self._counters) + len(self._gauges) + len(self._histograms)
        )

    def snapshot(self) -> List[Dict[str, object]]:
        """Deterministically ordered rows for JSONL export."""
        rows: List[Dict[str, object]] = []
        for (name, labels), value in sorted(self._counters.items()):
            rows.append(
                {
                    "kind": "counter",
                    "name": name,
                    "labels": dict(labels),
                    "value": value,
                }
            )
        for (name, labels), value in sorted(self._gauges.items()):
            rows.append(
                {
                    "kind": "gauge",
                    "name": name,
                    "labels": dict(labels),
                    "value": value,
                }
            )
        for (name, labels), histogram in sorted(self._histograms.items()):
            rows.append(
                {
                    "kind": "histogram",
                    "name": name,
                    "labels": dict(labels),
                    "count": histogram.count,
                    "sum": histogram.total,
                    "min": histogram.min,
                    "max": histogram.max,
                    "buckets": {
                        str(exp): n
                        for exp, n in sorted(histogram.buckets.items())
                    },
                }
            )
        return rows
