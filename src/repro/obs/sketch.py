"""Deterministic, mergeable quantile sketch over non-negative integers.

:class:`QuantileSketch` is a fixed log-bucket histogram: the coarse
bucket of a value is the same power-of-two exponent the
:class:`~repro.obs.metrics.MetricsRegistry` histogram uses
(``max(0, v - 1).bit_length()``, so exponent ``e >= 1`` covers
``(2^(e-1), 2^e]``), and each coarse bucket is split into
``subbuckets`` equal-width linear sub-buckets.  A quantile query walks
the sorted bucket keys to the nearest-rank bucket and reports that
sub-bucket's upper edge, clamped into the exactly-tracked
``[min, max]`` range.

Error bound: the exact nearest-rank value lands in the reported
sub-bucket, whose width is ``ceil(2^(e-1) / subbuckets)`` — so the
reported quantile overshoots the exact one by at most a relative
``1/subbuckets`` (6.25% at the default 16) plus one integer unit of
rounding slack.  For nanosecond latencies the unit slack is
negligible; ``tests/obs/test_sketch.py`` gates the bound on real
density/fig5-shaped distributions.

Merging adds bucket counts — commutative and associative — so sharded
sweep workers can sketch independently and the merged result is
byte-identical to a serial run's, regardless of worker count.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["QuantileSketch", "SKETCH_RELATIVE_ERROR"]

#: Documented relative error bound at the default 16 sub-buckets.
SKETCH_RELATIVE_ERROR = 1 / 16


class QuantileSketch:
    """Mergeable log-bucket histogram with nearest-rank quantiles."""

    def __init__(
        self,
        name: str = "",
        unit: str = "ns",
        labels: Optional[Dict[str, object]] = None,
        subbuckets: int = 16,
    ) -> None:
        if subbuckets < 1:
            raise ValueError(f"{name}: subbuckets must be >= 1")
        self.name = name
        self.unit = unit
        self.labels: Dict[str, object] = dict(labels or {})
        self.subbuckets = subbuckets
        #: ``(exponent, sub)`` → count.  Keys sort in value order.
        self.buckets: Dict[Tuple[int, int], int] = {}
        self.count = 0
        self.total = 0
        self.vmin = 0
        self.vmax = 0

    # -- recording -----------------------------------------------------
    def _key(self, value: int) -> Tuple[int, int]:
        exponent = max(0, value - 1).bit_length()
        if exponent == 0:
            return (0, 0)
        lo = 1 << (exponent - 1)
        sub = ((value - lo) * self.subbuckets + lo - 1) // lo
        return (exponent, sub)

    def observe(self, value: int) -> None:
        """Fold one non-negative integer sample in."""
        if isinstance(value, float):
            if not math.isfinite(value):
                raise ValueError(
                    f"{self.name}: non-finite sample {value!r}"
                )
            value = int(value)
        if value < 0:
            raise ValueError(f"{self.name}: negative sample {value}")
        key = self._key(value)
        self.buckets[key] = self.buckets.get(key, 0) + 1
        if not self.count:
            self.vmin = value
            self.vmax = value
        else:
            if value < self.vmin:
                self.vmin = value
            if value > self.vmax:
                self.vmax = value
        self.count += 1
        self.total += value

    def observe_many(self, values: Iterable[int]) -> None:
        for value in values:
            self.observe(value)

    def __len__(self) -> int:
        return self.count

    # -- queries -------------------------------------------------------
    def _representative(self, key: Tuple[int, int]) -> int:
        """Upper edge of one sub-bucket (what a quantile reports)."""
        exponent, sub = key
        if exponent == 0:
            return 1
        lo = 1 << (exponent - 1)
        return lo + (sub * lo + self.subbuckets - 1) // self.subbuckets

    def quantile(self, q: float) -> int:
        """Nearest-rank ``q``-th percentile (0 <= q <= 100)."""
        if not self.count:
            raise ValueError(f"{self.name}: empty sketch")
        if not 0 <= q <= 100:
            raise ValueError(f"{self.name}: percentile {q} out of range")
        if q == 0:
            return self.vmin
        rank = math.ceil(q / 100 * self.count)
        seen = 0
        for key in sorted(self.buckets):
            seen += self.buckets[key]
            if seen >= rank:
                value = self._representative(key)
                return max(self.vmin, min(self.vmax, value))
        return self.vmax

    def mean(self) -> float:
        if not self.count:
            raise ValueError(f"{self.name}: empty sketch")
        return self.total / self.count

    # -- merge / export ------------------------------------------------
    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` in (commutative; returns ``self``)."""
        if other.subbuckets != self.subbuckets:
            raise ValueError(
                f"{self.name}: cannot merge sketches with "
                f"{self.subbuckets} vs {other.subbuckets} sub-buckets"
            )
        if not other.count:
            return self
        for key, count in other.buckets.items():
            self.buckets[key] = self.buckets.get(key, 0) + count
        if not self.count:
            self.vmin = other.vmin
            self.vmax = other.vmax
        else:
            self.vmin = min(self.vmin, other.vmin)
            self.vmax = max(self.vmax, other.vmax)
        self.count += other.count
        self.total += other.total
        return self

    def to_row(self) -> Dict[str, object]:
        """The exported JSONL record body (``context`` added by export)."""
        return {
            "type": "sketch",
            "name": self.name,
            "unit": self.unit,
            "labels": dict(self.labels),
            "subbuckets": self.subbuckets,
            "count": self.count,
            "total": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "buckets": {
                f"{e}:{s}": self.buckets[(e, s)]
                for e, s in sorted(self.buckets)
            },
        }

    @classmethod
    def from_row(cls, row: Dict[str, object]) -> "QuantileSketch":
        """Rebuild a sketch from an exported record."""
        sketch = cls(
            name=str(row.get("name", "")),
            unit=str(row.get("unit", "ns")),
            labels=dict(row.get("labels") or {}),  # type: ignore[arg-type]
            subbuckets=int(row.get("subbuckets", 16)),
        )
        for key, count in (row.get("buckets") or {}).items():  # type: ignore[union-attr]
            exponent, _, sub = str(key).partition(":")
            sketch.buckets[(int(exponent), int(sub))] = int(count)
        sketch.count = int(row.get("count", 0))
        sketch.total = int(row.get("total", 0))
        sketch.vmin = int(row.get("min", 0))
        sketch.vmax = int(row.get("max", 0))
        return sketch

    @classmethod
    def from_values(
        cls, values: Iterable[int], name: str = "", unit: str = "ns"
    ) -> "QuantileSketch":
        sketch = cls(name=name, unit=unit)
        sketch.observe_many(values)
        return sketch
