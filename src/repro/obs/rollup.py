"""Bounded-memory, multi-resolution rollup series.

:class:`RollupSeries` is the streaming replacement for the unbounded
``TimeSeries`` append log: samples land in fixed-width time buckets
that keep only the aggregates a fleet dashboard needs — ``count``,
``sum``, ``min``, ``max``, ``first``, ``last`` — so memory is
O(buckets), not O(samples), no matter how long the simulated horizon
runs.

When the bucket list would exceed ``max_buckets``, the series
*compacts*: the bucket width doubles and adjacent buckets merge
pairwise (aligned on the new width).  Compaction is a pure function of
the samples recorded so far, so two runs that record the same
``(time_ns, value)`` stream hold byte-identical bucket lists —
the property the sweep runner's shard-invariance gate relies on.

At the finest resolution (``width_ns=1`` and enough buckets that no
compaction fires) every bucket holds exactly one sample and the
aggregates are *exactly* those of a ``TimeSeries`` over the same
stream; ``tests/obs/test_rollup.py`` proves the equivalence.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.units import SEC

__all__ = ["RollupSeries", "RollupBucket"]


class RollupBucket:
    """Aggregates of every sample in one ``[start, start+width)`` slot."""

    __slots__ = (
        "index",
        "count",
        "total",
        "vmin",
        "vmax",
        "first",
        "last",
        "first_ns",
        "last_ns",
    )

    def __init__(self, index: int, time_ns: int, value: float) -> None:
        self.index = index
        self.count = 1
        self.total = value
        self.vmin = value
        self.vmax = value
        self.first = value
        self.last = value
        self.first_ns = time_ns
        self.last_ns = time_ns

    def add(self, time_ns: int, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        self.last = value
        self.last_ns = time_ns

    def absorb(self, other: "RollupBucket") -> None:
        """Merge a later bucket into this one (compaction step)."""
        self.count += other.count
        self.total += other.total
        if other.vmin < self.vmin:
            self.vmin = other.vmin
        if other.vmax > self.vmax:
            self.vmax = other.vmax
        self.last = other.last
        self.last_ns = other.last_ns


class RollupSeries:
    """A bounded-memory time series of per-bucket aggregates.

    ``kind`` names what the series measures (``used``, ``committed``,
    ...) independently of the display ``name`` — rollup consumers key
    on it instead of parsing names.  ``labels`` ride into the exported
    row untouched.
    """

    def __init__(
        self,
        name: str = "",
        kind: str = "",
        max_buckets: int = 256,
        width_ns: int = 1,
        labels: Optional[Dict[str, object]] = None,
    ) -> None:
        if max_buckets < 2:
            raise ValueError(f"{name}: max_buckets must be >= 2")
        if width_ns < 1:
            raise ValueError(f"{name}: width_ns must be >= 1")
        self.name = name
        self.kind = kind
        self.max_buckets = max_buckets
        self.width_ns = width_ns
        self.labels: Dict[str, object] = dict(labels or {})
        self.buckets: List[RollupBucket] = []
        self.count = 0
        self._last_ns = 0

    # -- recording -----------------------------------------------------
    def record(self, time_ns: int, value: float) -> None:
        """Fold one sample in (times must be non-decreasing)."""
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(
                f"{self.name}: non-finite sample {value!r} at {time_ns}"
            )
        if self.count and time_ns < self._last_ns:
            raise ValueError(
                f"{self.name}: sample at {time_ns} before {self._last_ns}"
            )
        self._last_ns = time_ns
        self.count += 1
        index = time_ns // self.width_ns
        if self.buckets and self.buckets[-1].index == index:
            self.buckets[-1].add(time_ns, value)
        else:
            self.buckets.append(RollupBucket(index, time_ns, value))
            while len(self.buckets) > self.max_buckets:
                self._compact()

    def _compact(self) -> None:
        """Double the bucket width and merge pairwise (deterministic)."""
        self.width_ns *= 2
        merged: List[RollupBucket] = []
        for bucket in self.buckets:
            bucket.index //= 2
            if merged and merged[-1].index == bucket.index:
                merged[-1].absorb(bucket)
            else:
                merged.append(bucket)
        self.buckets = merged

    # -- aggregates (exact under any amount of compaction) -------------
    def __len__(self) -> int:
        return self.count

    def bucket_count(self) -> int:
        """Resident buckets — the memory bound, ``<= max_buckets``."""
        return len(self.buckets)

    def last(self) -> Tuple[int, float]:
        """The most recent sample (exact)."""
        if not self.buckets:
            raise ValueError(f"{self.name}: empty series")
        tail = self.buckets[-1]
        return tail.last_ns, tail.last

    def first(self) -> Tuple[int, float]:
        """The oldest sample (exact)."""
        if not self.buckets:
            raise ValueError(f"{self.name}: empty series")
        head = self.buckets[0]
        return head.first_ns, head.first

    def max_value(self) -> float:
        """Largest sampled value (exact)."""
        if not self.buckets:
            raise ValueError(f"{self.name}: empty series")
        return max(b.vmax for b in self.buckets)

    def min_value(self) -> float:
        """Smallest sampled value (exact)."""
        if not self.buckets:
            raise ValueError(f"{self.name}: empty series")
        return min(b.vmin for b in self.buckets)

    def total(self) -> float:
        """Sum of every sampled value (exact)."""
        return sum(b.total for b in self.buckets)

    def mean(self) -> float:
        """Mean of every sampled value (exact)."""
        if not self.count:
            raise ValueError(f"{self.name}: empty series")
        return self.total() / self.count

    def delta(self) -> float:
        """Last value minus first value (exact; cumulative series)."""
        if not self.buckets:
            return 0.0
        return self.buckets[-1].last - self.buckets[0].first

    # -- rendering / export --------------------------------------------
    def timeline(self) -> List[Tuple[int, int, float, float, float]]:
        """``(start_ns, count, min, mean, max)`` per resident bucket."""
        return [
            (
                b.index * self.width_ns,
                b.count,
                b.vmin,
                b.total / b.count,
                b.vmax,
            )
            for b in self.buckets
        ]

    def times_s(self) -> List[float]:
        """Bucket start times in seconds (rendering axis)."""
        return [b.index * self.width_ns / SEC for b in self.buckets]

    def to_row(self) -> Dict[str, object]:
        """The exported JSONL record body (``context`` added by export)."""
        return {
            "type": "rollup",
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "width_ns": self.width_ns,
            "samples": self.count,
            "buckets": [
                [
                    b.index * self.width_ns,
                    b.count,
                    b.total,
                    b.vmin,
                    b.vmax,
                    b.first,
                    b.last,
                ]
                for b in self.buckets
            ],
        }

    @classmethod
    def from_row(cls, row: Dict[str, object]) -> "RollupSeries":
        """Rebuild a (read-only) series from an exported record."""
        series = cls(
            name=str(row.get("name", "")),
            kind=str(row.get("kind", "")),
            width_ns=int(row.get("width_ns", 1)),
            labels=dict(row.get("labels") or {}),  # type: ignore[arg-type]
        )
        for raw in row.get("buckets") or []:  # type: ignore[union-attr]
            start_ns, count, total, vmin, vmax, first, last = raw
            bucket = RollupBucket(
                int(start_ns) // series.width_ns, int(start_ns), float(first)
            )
            bucket.count = int(count)
            bucket.total = float(total)
            bucket.vmin = float(vmin)
            bucket.vmax = float(vmax)
            bucket.last = float(last)
            series.buckets.append(bucket)
        series.count = int(row.get("samples", 0))
        return series
