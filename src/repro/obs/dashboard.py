"""Fleet telemetry dashboard over an exported trace.

``python -m repro.experiments obs-report`` is ``trace-report``'s
streaming sibling: instead of attributing individual unplug spans, it
renders the *continuous* telemetry the streaming layer exported —
per-host used/committed memory timelines (``rollup`` rows), merged
quantile-sketch percentile tables (``sketch`` rows, merged across
contexts with :meth:`QuantileSketch.merge`), SLO breach windows
(``slo.breach`` spans), and the eviction → cold-start attribution the
trace report also shows.

Rendering is deterministic — rows sort by ``(name, labels, context)``
and every number formats through fixed-width format specs — so the
report's SHA-256 digest is byte-stable across reruns and sweep worker
counts; CI gates on exactly that.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.obs.report import EvictionAttribution, _attribute_evictions
from repro.obs.rollup import RollupSeries
from repro.obs.sketch import QuantileSketch
from repro.units import GIB, SEC

__all__ = [
    "BreachWindow",
    "ObsReport",
    "RollupSummary",
    "SketchSummary",
    "build_obs_report",
    "load_obs_report",
]

#: Sparkline glyphs, low to high (ASCII so CI logs stay clean).
SPARK_LEVELS = ".:-=+*#%@"
#: Sparkline width cap (buckets re-chunk into at most this many cells).
SPARK_WIDTH = 40


def _labels_key(labels: Dict[str, object]) -> str:
    return json.dumps(labels, sort_keys=True, separators=(",", ":"))


def _spark(series: RollupSeries) -> str:
    """A fixed-width ASCII sparkline of the per-bucket means."""
    timeline = series.timeline()
    if not timeline:
        return ""
    means = [mean for _, _, _, mean, _ in timeline]
    if len(means) > SPARK_WIDTH:
        chunked: List[float] = []
        for cell in range(SPARK_WIDTH):
            lo = cell * len(means) // SPARK_WIDTH
            hi = max(lo + 1, (cell + 1) * len(means) // SPARK_WIDTH)
            chunk = means[lo:hi]
            chunked.append(sum(chunk) / len(chunk))
        means = chunked
    lo = min(means)
    hi = max(means)
    if hi <= lo:
        return SPARK_LEVELS[0] * len(means)
    scale = len(SPARK_LEVELS) - 1
    return "".join(
        SPARK_LEVELS[int((value - lo) / (hi - lo) * scale)]
        for value in means
    )


@dataclass
class RollupSummary:
    """One rendered rollup timeline row."""

    context: int
    name: str
    kind: str
    labels: Dict[str, object]
    samples: int
    buckets: int
    width_ns: int
    vmin: float
    mean: float
    vmax: float
    last: float
    spark: str


@dataclass
class SketchSummary:
    """One merged sketch percentile row (possibly many contexts)."""

    name: str
    unit: str
    labels: Dict[str, object]
    contexts: int
    count: int
    p50: int
    p90: int
    p99: int
    p999: int
    vmax: int


@dataclass
class BreachWindow:
    """One ``slo.breach`` span from the trace."""

    context: int
    slo: str
    kind: str
    start_ns: int
    end_ns: int
    bad: int
    total: int
    pressure: int
    burn_x1000: int


@dataclass
class ObsReport:
    """Everything ``obs-report`` renders."""

    rollups: List[RollupSummary]
    sketches: List[SketchSummary]
    breaches: List[BreachWindow]
    eviction_policies: List[EvictionAttribution] = field(default_factory=list)
    contexts: int = 0
    #: Every rollup row in the trace (host-level + per-node).
    rollup_rows: int = 0

    def render(self) -> str:
        lines = ["obs-report: fleet streaming telemetry"]
        lines.extend(self._render_rollups())
        lines.extend(self._render_sketches())
        lines.extend(self._render_breaches())
        lines.extend(self._render_evictions())
        lines.append(
            f"  contexts={self.contexts} rollups={self.rollup_rows} "
            f"sketches={len(self.sketches)} breaches={len(self.breaches)}"
        )
        return "\n".join(lines)

    @property
    def digest(self) -> str:
        """SHA-256 of the rendered report (the CI rerun gate)."""
        return hashlib.sha256(self.render().encode()).hexdigest()

    def summary_line(self, path: str) -> str:
        return (
            f"[obs-report: sha256={self.digest} "
            f"rollups={self.rollup_rows} sketches={len(self.sketches)} "
            f"breaches={len(self.breaches)} file={path}]"
        )

    # -- sections ------------------------------------------------------
    def _render_rollups(self) -> List[str]:
        lines = ["  host memory timelines (per-host rollups):"]
        if not self.rollups:
            lines.append("    (no rollup rows in this trace)")
            return lines
        lines.append(
            f"    {'series':<14} {'ctx':>3} {'mode':<16} {'samples':>7} "
            f"{'bkts':>4} {'min_gib':>8} {'mean_gib':>9} {'max_gib':>8} "
            f"{'last_gib':>9}  timeline"
        )
        for row in self.rollups:
            mode = str(row.labels.get("mode", "-"))
            lines.append(
                f"    {row.name:<14} {row.context:>3} {mode:<16} "
                f"{row.samples:>7} {row.buckets:>4} "
                f"{row.vmin / GIB:>8.3f} {row.mean / GIB:>9.3f} "
                f"{row.vmax / GIB:>8.3f} {row.last / GIB:>9.3f}  "
                f"|{row.spark}|"
            )
        hidden = self.rollup_rows - len(self.rollups)
        if hidden > 0:
            lines.append(
                f"    (+{hidden} per-node rollup series"
                f" summarised into the host rows above)"
            )
        return lines

    def _render_sketches(self) -> List[str]:
        lines = ["  sketch percentiles (merged across contexts):"]
        if not self.sketches:
            lines.append("    (no sketch rows in this trace)")
            return lines
        lines.append(
            f"    {'sketch':<28} {'mode':<16} {'ctxs':>4} {'count':>7} "
            f"{'p50_ms':>8} {'p90_ms':>8} {'p99_ms':>8} {'p99.9_ms':>9} "
            f"{'max_ms':>8}"
        )
        for row in self.sketches:
            mode = str(row.labels.get("mode", "all"))
            lines.append(
                f"    {row.name:<28} {mode:<16} {row.contexts:>4} "
                f"{row.count:>7} {row.p50 / 1e6:>8.3f} {row.p90 / 1e6:>8.3f} "
                f"{row.p99 / 1e6:>8.3f} {row.p999 / 1e6:>9.3f} "
                f"{row.vmax / 1e6:>8.3f}"
            )
        return lines

    def _render_breaches(self) -> List[str]:
        lines = ["  slo breach windows:"]
        if not self.breaches:
            lines.append("    (none)")
            return lines
        lines.append(
            f"    {'ctx':>3} {'slo':<14} {'kind':<10} {'window_s':>17} "
            f"{'bad/total':>10} {'burn':>6} {'pressure':>8}"
        )
        for b in self.breaches:
            window = f"{b.start_ns / SEC:.1f}-{b.end_ns / SEC:.1f}"
            lines.append(
                f"    {b.context:>3} {b.slo:<14} {b.kind:<10} {window:>17} "
                f"{f'{b.bad}/{b.total}':>10} {b.burn_x1000 / 1000:>6.2f} "
                f"{b.pressure:>8}"
            )
        return lines

    def _render_evictions(self) -> List[str]:
        if not self.eviction_policies:
            return []
        lines = ["  eviction -> cold-start attribution by policy:"]
        lines.append(
            f"    {'policy':<12} {'evicted':>7} {'pressure':>8} "
            f"{'recold':>6} {'recold%':>7} {'p50_gap_ms':>10}"
        )
        for policy in self.eviction_policies:
            lines.append(
                f"    {policy.policy:<12} {policy.evictions:>7} "
                f"{policy.pressure_evictions:>8} {policy.recolds:>6} "
                f"{policy.recold_frac:>6.1%} "
                f"{policy.median_recold_ns / 1e6:>10.3f}"
            )
        return lines


def build_obs_report(records: List[Dict[str, object]]) -> ObsReport:
    """Assemble the dashboard from parsed JSONL trace records."""
    spans: Dict[Tuple[int, int], Dict[str, object]] = {}
    contexts = set()
    rollup_rows: List[Dict[str, object]] = []
    sketch_rows: List[Dict[str, object]] = []
    breaches: List[BreachWindow] = []
    for record in records:
        kind = record.get("type")
        if "context" in record:
            contexts.add(int(record["context"]))
        if kind == "span":
            key = (int(record["context"]), int(record["id"]))
            spans[key] = record
            if record.get("name") == "slo.breach":
                attrs = record.get("attrs") or {}
                breaches.append(
                    BreachWindow(
                        context=key[0],
                        slo=str(attrs.get("slo", "?")),
                        kind=str(attrs.get("kind", "?")),
                        start_ns=int(record["start_ns"]),
                        end_ns=int(record["end_ns"] or record["start_ns"]),
                        bad=int(attrs.get("bad", 0)),
                        total=int(attrs.get("total", 0)),
                        pressure=int(attrs.get("pressure", 0)),
                        burn_x1000=int(attrs.get("burn_x1000", 0)),
                    )
                )
        elif kind == "rollup":
            rollup_rows.append(record)
        elif kind == "sketch":
            sketch_rows.append(record)

    rollups: List[RollupSummary] = []
    for row in sorted(
        rollup_rows,
        key=lambda r: (
            str(r.get("name", "")),
            _labels_key(r.get("labels") or {}),  # type: ignore[arg-type]
            int(r.get("context", 0)),
        ),
    ):
        labels = dict(row.get("labels") or {})  # type: ignore[arg-type]
        if "node" in labels:
            continue  # host-level rows carry the per-node sums already
        series = RollupSeries.from_row(row)
        if not series.buckets:
            continue
        rollups.append(
            RollupSummary(
                context=int(row.get("context", 0)),
                name=series.name,
                kind=series.kind,
                labels=labels,
                samples=series.count,
                buckets=series.bucket_count(),
                width_ns=series.width_ns,
                vmin=series.min_value(),
                mean=series.mean(),
                vmax=series.max_value(),
                last=series.last()[1],
                spark=_spark(series),
            )
        )

    merged: Dict[Tuple[str, str], Tuple[QuantileSketch, set]] = {}
    for row in sketch_rows:
        sketch = QuantileSketch.from_row(row)
        key = (sketch.name, _labels_key(sketch.labels))
        if key not in merged:
            merged[key] = (sketch, set())
        else:
            merged[key][0].merge(sketch)
        merged[key][1].add(int(row.get("context", 0)))

    sketches: List[SketchSummary] = []
    for key in sorted(merged):
        sketch, ctxs = merged[key]
        if not sketch.count:
            continue
        sketches.append(
            SketchSummary(
                name=sketch.name,
                unit=sketch.unit,
                labels=dict(sketch.labels),
                contexts=len(ctxs),
                count=sketch.count,
                p50=sketch.quantile(50),
                p90=sketch.quantile(90),
                p99=sketch.quantile(99),
                p999=sketch.quantile(99.9),
                vmax=sketch.vmax,
            )
        )

    breaches.sort(
        key=lambda b: (b.context, b.slo, b.start_ns, b.end_ns)
    )
    return ObsReport(
        rollups=rollups,
        sketches=sketches,
        breaches=breaches,
        eviction_policies=_attribute_evictions(spans),
        contexts=len(contexts),
        rollup_rows=len(rollup_rows),
    )


def load_obs_report(path: str) -> ObsReport:
    """Read an exported JSONL trace and build its dashboard."""
    from repro.obs.export import read_trace

    return build_obs_report(read_trace(path))
