"""Global tracing session behind ``--trace`` (mirrors ``--sanitize``).

The experiments CLI calls :func:`install` once; from then on every
:class:`~repro.cluster.provision.Fleet` (and ``TraceRouter``) built —
regardless of how many simulators an experiment constructs — asks
:func:`context_for` for the :class:`~repro.obs.context.ObsContext`
bound to its simulator.  Uninstalled, :func:`context_for` returns the
inert ``NO_OBS`` so the datapath stays untraced at near-zero cost.

One experiment like fig5 builds dozens of rigs (one simulator each);
the session keeps one context per simulator, in creation order, so the
exported JSONL concatenates per-run streams deterministically.
"""

from __future__ import annotations

import weakref
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.obs.context import NO_OBS, ObsContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

__all__ = [
    "ObsSession",
    "context_for",
    "current_session",
    "install",
    "is_installed",
    "scoped_session",
    "traced",
    "uninstall",
]


class ObsSession:
    """All tracing contexts created while ``--trace`` is installed."""

    def __init__(self) -> None:
        self.contexts: List[ObsContext] = []
        self._by_sim: "weakref.WeakKeyDictionary[Simulator, ObsContext]" = (
            weakref.WeakKeyDictionary()
        )

    def context_for(self, sim: "Simulator") -> ObsContext:
        """The (shared) context bound to ``sim``; created on first ask."""
        context = self._by_sim.get(sim)
        if context is None:
            context = ObsContext(enabled=True, index=len(self.contexts))
            context.bind_sim(sim)
            self.contexts.append(context)
            self._by_sim[sim] = context
        return context

    def open_spans(self) -> int:
        return sum(c.tracer.open_spans() for c in self.contexts)

    def total_spans(self) -> int:
        return sum(len(c.tracer.spans()) for c in self.contexts)

    def metric_series(self) -> int:
        return sum(c.metrics.series_count() for c in self.contexts)

    def finalize(self) -> int:
        """Close spans abandoned by time-budget run cuts; returns count."""
        return sum(c.finalize() for c in self.contexts)


_session: Optional[ObsSession] = None


def install() -> ObsSession:
    """Start a global tracing session (raises if one is active)."""
    global _session
    if _session is not None:
        raise RuntimeError("a tracing session is already installed")
    _session = ObsSession()
    return _session


def uninstall() -> Optional[ObsSession]:
    """End the session; returns it (with all contexts) or ``None``."""
    global _session
    session = _session
    _session = None
    return session


def is_installed() -> bool:
    return _session is not None


def current_session() -> Optional[ObsSession]:
    return _session


def context_for(sim: "Simulator") -> ObsContext:
    """The tracing context for ``sim``, or ``NO_OBS`` when untraced."""
    if _session is None:
        return NO_OBS
    return _session.context_for(sim)


@contextmanager
def traced() -> Iterator[ObsSession]:
    """``with traced() as session:`` — scoped install/uninstall."""
    session = install()
    try:
        yield session
    finally:
        uninstall()


@contextmanager
def scoped_session() -> Iterator[ObsSession]:
    """A fresh session for the duration of the block, shadowing any
    active one (restored on exit).

    This is how the sweep runner (:mod:`repro.sweep.runner`) captures
    one cell's trace in isolation: each cell gets its own session whose
    contexts index from zero, and the runner renumbers them into the
    merged export — which is what makes trace digests identical for any
    worker count.  Unlike :func:`traced`, an already-installed session
    is not an error; it is simply shadowed.
    """
    global _session
    prior = _session
    _session = ObsSession()
    try:
        yield _session
    finally:
        _session = prior
