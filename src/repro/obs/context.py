"""The context object threaded through the datapath.

:class:`ObsContext` bundles one :class:`~repro.obs.span.Tracer` and one
:class:`~repro.obs.metrics.MetricsRegistry` for one simulator (one
fleet).  Layers never hold the context directly — they hold an
:class:`ObsScope`, a lightweight view that stamps a fixed label set
(``vm``, ``mode``, ``host``) onto every span and metric it emits, so a
driver doesn't need to know which VM it belongs to to label correctly.

``NO_OBS``/``NO_SCOPE`` are the inert singletons (mirroring
``NO_FAULTS``/``NO_RETRY``): untraced runs thread them through the same
code paths at near-zero cost, and emitted spans degrade to
``NULL_SPAN``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.span import NULL_SPAN, SpanLike, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.rollup import RollupSeries
    from repro.obs.sketch import QuantileSketch
    from repro.sim.engine import Simulator

__all__ = ["NO_OBS", "NO_SCOPE", "ObsContext", "ObsScope"]


class ObsContext:
    """Tracer + metrics registry for one simulator."""

    def __init__(
        self, enabled: bool = True, index: int = 0, label: str = ""
    ) -> None:
        self.enabled = enabled
        self.index = index
        self.label = label
        self.tracer = Tracer(enabled=enabled)
        self.metrics = MetricsRegistry(enabled=enabled)
        #: Streaming telemetry registered for export, in registration
        #: order (deterministic: collectors register at construction).
        self.rollups: List["RollupSeries"] = []
        self.sketches: List["QuantileSketch"] = []
        self.sim: Optional["Simulator"] = None

    def bind_sim(self, sim: "Simulator") -> None:
        self.sim = sim
        self.tracer.bind_sim(sim)

    def scope(self, **attrs: object) -> "ObsScope":
        """A view that stamps ``attrs`` onto every span/metric it emits."""
        if not self.enabled:
            return NO_SCOPE
        return ObsScope(self, dict(attrs))

    def register_rollup(self, series: "RollupSeries") -> None:
        """Export ``series`` with this context's trace (no-op untraced).

        The disabled singleton must stay inert — registering on
        ``NO_OBS`` would leak every run's series into a global."""
        if self.enabled:
            self.rollups.append(series)

    def register_sketch(self, sketch: "QuantileSketch") -> None:
        """Export ``sketch`` with this context's trace (no-op untraced)."""
        if self.enabled:
            self.sketches.append(sketch)

    def finalize(self) -> int:
        """Force-close spans left open by a run cut at its time budget."""
        return self.tracer.close_open(cut="run-end")


class ObsScope:
    """Label-stamping view over an :class:`ObsContext`.

    The fixed ``attrs`` (conventionally ``vm``/``mode``/``host``) are
    merged into every span's attributes and every metric's label set;
    call-site kwargs win on collision.
    """

    __slots__ = ("context", "attrs", "enabled")

    def __init__(self, context: ObsContext, attrs: Dict[str, object]) -> None:
        self.context = context
        self.attrs = attrs
        self.enabled = context.enabled

    def span(
        self,
        name: str,
        parent: Optional[SpanLike] = None,
        start_ns: Optional[int] = None,
        **attrs: object,
    ) -> SpanLike:
        if not self.enabled:
            return NULL_SPAN
        merged = dict(self.attrs)
        merged.update(attrs)
        return self.context.tracer.span(
            name, parent=parent, start_ns=start_ns, **merged
        )

    def event(
        self,
        name: str,
        parent: Optional[SpanLike] = None,
        start_ns: Optional[int] = None,
        **attrs: object,
    ) -> SpanLike:
        if not self.enabled:
            return NULL_SPAN
        span = self.span(name, parent=parent, start_ns=start_ns, **attrs)
        return span.close(end_ns=span.start_ns)

    def inc(self, name: str, value: int = 1, **labels: object) -> None:
        if not self.enabled:
            return
        merged = dict(self.attrs)
        merged.update(labels)
        self.context.metrics.inc(name, value, **merged)

    def observe(self, name: str, value: int, **labels: object) -> None:
        if not self.enabled:
            return
        merged = dict(self.attrs)
        merged.update(labels)
        self.context.metrics.observe(name, value, **merged)

    def gauge_set(self, name: str, value: int, **labels: object) -> None:
        if not self.enabled:
            return
        merged = dict(self.attrs)
        merged.update(labels)
        self.context.metrics.gauge_set(name, value, **merged)


#: Disabled context/scope: the defaults everywhere tracing is optional.
NO_OBS = ObsContext(enabled=False)
NO_SCOPE = ObsScope(NO_OBS, {})
