"""Timing cost model for every mechanism the paper measures.

All constants live in one frozen dataclass so that experiments can run
against perturbed models (ablations) and so the calibration is auditable
in one place.  Anchors (see DESIGN.md, "Timing model calibration"):

* the paper reports ≈30 ms to plug Bert's 640 MiB (five 128 MiB blocks),
  giving ≈6 ms per block split between hot-add (``memmap``/struct-page
  initialization) and onlining;
* vanilla unplug latency reaches seconds for GiB-sized requests against a
  loaded guest (Figures 5/6), dominated by page migration at a few
  microseconds per 4 KiB page;
* HotMem unplug is per-block constant work only (offline walk, hot-remove,
  ``madvise``) at ≈1 ms per block, which produces the order-of-magnitude
  gap the paper reports at every size;
* memory zeroing proceeds at ≈10 GiB/s (≈0.4 µs per page).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.units import MS, NS, US

__all__ = ["CostModel", "ZeroingMode", "DEFAULT_COSTS"]


class ZeroingMode:
    """System-wide page-zeroing configuration (Section 2.2).

    ``INIT_ON_ALLOC`` zeroes pages when they are allocated, penalizing the
    unplug path (offlining allocates pages through generic routines);
    ``INIT_ON_FREE`` zeroes pages when they are released, penalizing the
    plug path (pages are zeroed before onlining exposes them).
    """

    INIT_ON_ALLOC = "init_on_alloc"
    INIT_ON_FREE = "init_on_free"
    NONE = "none"

    ALL = (INIT_ON_ALLOC, INIT_ON_FREE, NONE)


@dataclass(frozen=True)
class CostModel:
    """Calibrated nanosecond costs for every simulated mechanism."""

    # -- hot-add / online (plug path) ---------------------------------
    #: Create+initialize struct pages (memmap) for one 128 MiB block.
    hot_add_block_ns: int = 4 * MS
    #: Release one block's pages to the allocator (onlining).
    online_block_ns: int = 2 * MS

    # -- offline / hot-remove (unplug path) ----------------------------
    #: Walk and isolate one block's pages during offline (no migrations).
    offline_block_base_ns: int = 400 * US
    #: Destroy one block's metadata during hot-remove.
    hot_remove_block_ns: int = 300 * US
    #: Migrate one occupied 4 KiB page (copy + rmap/TLB bookkeeping).
    page_migration_ns: int = 5 * US
    #: Scan cost per candidate block examined while searching for
    #: offlineable memory (vanilla linear scan, Section 3).
    unplug_scan_block_ns: int = 20 * US
    #: Marginal costs for each extra block when a contiguous run is
    #: offlined/removed/madvised as ONE operation — the batched-unplug
    #: optimization the paper names as future work (Section 6.1.1).
    offline_block_marginal_ns: int = 80 * US
    hot_remove_block_marginal_ns: int = 60 * US
    madvise_block_marginal_ns: int = 150 * US

    # -- zeroing --------------------------------------------------------
    #: Zero one 4 KiB page (≈10 GiB/s).
    page_zero_ns: int = 400 * NS

    # -- hypervisor side ------------------------------------------------
    #: One virtio-mem request/response round trip (notification + ack).
    virtio_request_rtt_ns: int = 100 * US
    #: ``madvise(MADV_DONTNEED)`` one 128 MiB block back to the host
    #: (runs on the VMM's own thread, not a guest vCPU).
    madvise_block_ns: int = 1500 * US

    # -- memory ballooning (related-work baseline, Section 7) -----------
    #: Guest-side cost to allocate and queue one page into the balloon.
    balloon_inflate_page_ns: int = 900 * NS
    #: Guest-side cost to return one balloon page to the allocator.
    balloon_deflate_page_ns: int = 300 * NS
    #: Host-side cost to release one reported balloon page.
    balloon_host_release_page_ns: int = 150 * NS
    #: Driver back-off before retrying a stalled inflation (free memory
    #: exhausted; the "unreliable or unpredictably slow" behaviour).
    balloon_retry_interval_ns: int = 100 * MS

    # -- guest page faults ----------------------------------------------
    #: Service one anonymous minor fault (allocate + map one page).
    anon_fault_ns: int = 1500 * NS
    #: Map one already-cached file page (shared library warm in page cache).
    file_fault_cached_ns: int = 800 * NS
    #: Fault one file page in from backing storage (first touch).
    file_fault_uncached_ns: int = 15 * US
    #: Tear down one mapped page on process exit (unmap + free).
    page_free_ns: int = 250 * NS

    # -- zeroing configuration -------------------------------------------
    #: One of :class:`ZeroingMode`; ``INIT_ON_ALLOC`` is the common default.
    zeroing_mode: str = ZeroingMode.INIT_ON_ALLOC

    def __post_init__(self) -> None:
        if self.zeroing_mode not in ZeroingMode.ALL:
            raise ValueError(f"unknown zeroing mode {self.zeroing_mode!r}")
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if field.type == "int" and value < 0:
                raise ValueError(f"negative cost {field.name}={value}")

    # ------------------------------------------------------------------
    # Derived costs
    # ------------------------------------------------------------------
    def migrate_pages_ns(self, pages: int) -> int:
        """CPU cost of migrating ``pages`` occupied pages."""
        return pages * self.page_migration_ns

    def zero_pages_ns(self, pages: int) -> int:
        """CPU cost of zeroing ``pages`` pages."""
        return pages * self.page_zero_ns

    def plug_block_ns(self, zero_pages: int = 0) -> int:
        """Guest-side cost of hot-adding and onlining one block.

        ``zero_pages`` is the number of pages the guest must zero during
        onlining (non-zero only under ``init_on_free`` without HotMem's
        zero-skip, because the host already provides zeroed memory).
        """
        return self.hot_add_block_ns + self.online_block_ns + self.zero_pages_ns(
            zero_pages
        )

    def offline_block_ns(self, migrated_pages: int, zeroed_pages: int = 0) -> int:
        """Guest-side cost of offlining one block.

        ``migrated_pages`` occupied pages must be moved out first;
        ``zeroed_pages`` accounts for ``init_on_alloc`` zeroing triggered by
        the generic allocation routines the offline path uses.
        """
        return (
            self.offline_block_base_ns
            + self.migrate_pages_ns(migrated_pages)
            + self.zero_pages_ns(zeroed_pages)
        )

    def replace(self, **changes) -> "CostModel":
        """Return a copy with some costs overridden (for ablations)."""
        return dataclasses.replace(self, **changes)


#: The calibrated default model used by every experiment.
DEFAULT_COSTS = CostModel()
