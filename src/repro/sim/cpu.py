"""Round-robin CPU core model.

A :class:`CpuCore` is the simulator's stand-in for one vCPU (or one pinned
host core).  Work is submitted as a number of CPU-nanoseconds plus a label;
the core time-slices all runnable work with a fixed quantum, so when the
virtio-mem driver migrates pages on the same vCPU that runs a function
instance, both slow down — this is the mechanism behind the interference
spikes of Figure 10 in the paper.

Per-label accounting mirrors the paper's use of the ``cpuacct`` cgroup
controller (Section 5.4): the evaluation isolates the vCPU that serves
virtio-mem interrupts and reports exactly the CPU time that the unplug
path consumed on it (Figure 7).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.errors import SimulationError
from repro.sim.engine import Event, Simulator
from repro.units import MS

__all__ = ["CpuCore", "CpuWork"]

#: Default scheduling quantum (2 ms, in the ballpark of CFS slices).
DEFAULT_QUANTUM_NS = 2 * MS


class CpuWork:
    """A unit of work queued on a core.

    Attributes
    ----------
    label:
        Accounting label (e.g. ``"virtio-mem"`` or ``"fn:cnn"``).
    remaining:
        CPU-nanoseconds still to execute.
    done:
        Event triggered (with this object) when the work completes.
    """

    __slots__ = ("label", "remaining", "done", "submitted_at", "completed_at")

    def __init__(self, label: str, work_ns: int, done: Event, submitted_at: int):
        self.label = label
        self.remaining = int(work_ns)
        self.done = done
        self.submitted_at = submitted_at
        self.completed_at: Optional[int] = None


class CpuCore:
    """A single core scheduled round-robin with a fixed quantum.

    The scheduler is non-preemptive within a slice: a newly submitted task
    waits at most one quantum before it first runs.  This is a faithful
    enough model of CFS for the per-second latency granularity the paper
    reports, while staying exactly deterministic.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "cpu",
        quantum_ns: int = DEFAULT_QUANTUM_NS,
    ):
        if quantum_ns <= 0:
            raise SimulationError("quantum must be positive")
        self.sim = sim
        self.name = name
        self.quantum_ns = quantum_ns
        self._run_queue: Deque[CpuWork] = deque()
        self._current: Optional[CpuWork] = None
        self._busy_ns = 0
        self._busy_by_label: Dict[str, int] = {}
        self._idle_since = sim.now
        self._slice_started_at = 0

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, work_ns: int, label: str = "") -> Event:
        """Queue ``work_ns`` nanoseconds of CPU work; returns its done event.

        Zero-length work completes immediately (at the current time).
        """
        if work_ns < 0:
            raise SimulationError(f"negative work: {work_ns}")
        done = self.sim.event()
        if work_ns == 0:
            done.trigger(None)
            return done
        work = CpuWork(label, work_ns, done, self.sim.now)
        self._run_queue.append(work)
        if self._current is None:
            self._dispatch()
        return work.done

    def run(self, work_ns: int, label: str = ""):
        """Generator helper: ``yield from core.run(...)`` inside a process."""
        done = self.submit(work_ns, label)
        yield done

    # ------------------------------------------------------------------
    # Scheduling internals
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        if self._current is not None:
            return
        if not self._run_queue:
            self._idle_since = self.sim.now
            return
        work = self._run_queue.popleft()
        self._current = work
        self._slice_started_at = self.sim.now
        slice_ns = min(self.quantum_ns, work.remaining)
        self.sim.schedule(slice_ns, self._on_slice_end, work, slice_ns)

    def _on_slice_end(self, work: CpuWork, slice_ns: int) -> None:
        self._busy_ns += slice_ns
        self._busy_by_label[work.label] = (
            self._busy_by_label.get(work.label, 0) + slice_ns
        )
        work.remaining -= slice_ns
        self._current = None
        if work.remaining > 0:
            self._run_queue.append(work)
        else:
            work.completed_at = self.sim.now
            work.done.trigger(work)
        self._dispatch()

    # ------------------------------------------------------------------
    # Introspection / accounting
    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """Whether a slice is currently executing."""
        return self._current is not None

    @property
    def queue_depth(self) -> int:
        """Number of tasks waiting (excluding the one on-core)."""
        return len(self._run_queue)

    @property
    def busy_ns(self) -> int:
        """Total CPU-nanoseconds executed on this core (completed slices)."""
        return self._busy_ns

    def busy_ns_for(self, label: str) -> int:
        """CPU-nanoseconds charged to an exact accounting label."""
        return self._busy_by_label.get(label, 0)

    def busy_ns_for_prefix(self, prefix: str) -> int:
        """CPU-nanoseconds charged to all labels starting with ``prefix``."""
        return sum(
            ns for label, ns in self._busy_by_label.items() if label.startswith(prefix)
        )

    def accounting(self) -> Dict[str, int]:
        """A copy of the per-label CPU-time table (label → ns)."""
        return dict(self._busy_by_label)

    def utilization(self, since_ns: int = 0) -> float:
        """Fraction of wall time this core was busy since ``since_ns``."""
        elapsed = self.sim.now - since_ns
        if elapsed <= 0:
            return 0.0
        return min(1.0, self._busy_ns / elapsed)

    def __repr__(self) -> str:
        state = "busy" if self.busy else "idle"
        return f"<CpuCore {self.name} {state} queue={self.queue_depth}>"
