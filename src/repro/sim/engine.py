"""Deterministic discrete-event simulation engine.

The engine is intentionally small: a binary-heap calendar queue with a
monotonic sequence number for stable ordering, plus a generator-coroutine
process layer.  A process is an ordinary Python generator that yields one
of three things:

* ``Timeout(ns)`` — resume after a simulated delay;
* ``Event`` — resume when the event is triggered (receives its value);
* another ``Process`` — resume when that process finishes (receives its
  return value).

Example
-------
>>> sim = Simulator()
>>> def worker():
...     yield Timeout(5)
...     return "done"
>>> proc = sim.spawn(worker())
>>> sim.run()
5
>>> proc.value
'done'
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

__all__ = ["Simulator", "Event", "Timeout", "Process", "AllOf"]


class Timeout:
    """A simulated delay, yielded by a process to sleep for ``delay`` ns."""

    __slots__ = ("delay",)

    def __init__(self, delay: int):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = int(delay)

    def __repr__(self) -> str:
        return f"Timeout({self.delay})"


class Event:
    """A one-shot condition processes can wait on.

    An event is triggered at most once, carries an optional value, and
    resumes every waiter in FIFO order.  Waiting on an already-triggered
    event resumes the waiter immediately (at the current simulated time).
    """

    __slots__ = ("sim", "triggered", "value", "_callbacks")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self._callbacks: list[Callable[[Any], None]] = []

    def trigger(self, value: Any = None) -> None:
        """Fire the event, resuming all waiters with ``value``."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(value)

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(value)`` when the event fires (or now if fired)."""
        if self.triggered:
            callback(self.value)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"<Event {state}>"


class AllOf:
    """Wait target that resumes once every child event has triggered.

    Yields the list of child values, in the order the children were given.
    """

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Event]):
        self.events = list(events)


ProcessGenerator = Generator[Any, Any, Any]


class Process:
    """A running simulation process wrapping a generator coroutine.

    The process completes when the generator returns; its return value is
    exposed as :attr:`value` and its completion as :attr:`done_event`, so
    other processes can ``yield`` a :class:`Process` to join it.
    """

    __slots__ = ("sim", "name", "_generator", "done_event", "_finished")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = ""):
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self.done_event = Event(sim)
        self._finished = False

    @property
    def finished(self) -> bool:
        """Whether the generator has run to completion."""
        return self._finished

    @property
    def value(self) -> Any:
        """The generator's return value (``None`` until finished)."""
        return self.done_event.value

    def kill(self, value: Any = None) -> None:
        """Terminate the process abruptly (a crashed host, a dead VM).

        Closes the generator at its current yield point — ``finally``
        blocks run, so spans close and in-flight accounting unwinds —
        and completes :attr:`done_event` with ``value`` so joiners
        resume.  Killing a finished process is a no-op.  The generator
        must not yield from a ``finally`` block reached by a kill.
        """
        if self._finished:
            return
        self._finished = True
        self._generator.close()
        self.done_event.trigger(value)

    def _resume(self, sent_value: Any) -> None:
        if self._finished:
            # Killed while parked on a timeout/event that later fired;
            # the wakeup has nothing left to resume.
            return
        try:
            target = self._generator.send(sent_value)
        except StopIteration as stop:
            self._finished = True
            self.done_event.trigger(stop.value)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, Timeout):
            self.sim.schedule(target.delay, self._resume, None)
        elif isinstance(target, Event):
            target.add_callback(self._resume)
        elif isinstance(target, Process):
            target.done_event.add_callback(self._resume)
        elif isinstance(target, AllOf):
            self._wait_all(target.events)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {target!r}"
            )

    def _wait_all(self, events: list[Event]) -> None:
        remaining = len(events)
        if remaining == 0:
            self.sim.schedule(0, self._resume, [])
            return
        results: list[Any] = [None] * remaining
        state = {"left": remaining}

        def make_callback(index: int) -> Callable[[Any], None]:
            def on_fire(value: Any) -> None:
                results[index] = value
                state["left"] -= 1
                if state["left"] == 0:
                    self._resume(results)

            return on_fire

        for index, event in enumerate(events):
            event.add_callback(make_callback(index))

    def __repr__(self) -> str:
        state = "finished" if self._finished else "running"
        return f"<Process {self.name} {state}>"


class _ScheduledCall:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: int, seq: int, callback: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (safe after it already ran)."""
        self.cancelled = True

    def __lt__(self, other: "_ScheduledCall") -> bool:
        # Compared O(log n) times per heap operation — attribute
        # comparisons, not tuple construction, keep the loop churn-free.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq


class Simulator:
    """The discrete-event loop: an integer-nanosecond virtual clock.

    Events scheduled for the same timestamp run in scheduling order, which
    makes every simulation in this repository fully deterministic given a
    fixed RNG seed.
    """

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._queue: list[_ScheduledCall] = []
        self._running = False
        #: Observers invoked after every executed callback (e.g. the
        #: memory-state sanitizer's every-N-events checkpoint).  Probes
        #: must not schedule or mutate simulation state.
        self._probes: list[Callable[[], None]] = []

    def add_probe(self, probe: Callable[[], None]) -> None:
        """Invoke ``probe()`` after each executed event (see ``_probes``)."""
        self._probes.append(probe)

    def remove_probe(self, probe: Callable[[], None]) -> None:
        """Stop invoking ``probe`` (no-op if it was never added)."""
        if probe in self._probes:
            self._probes.remove(probe)

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    def schedule(
        self, delay: int, callback: Callable[..., None], *args: Any
    ) -> _ScheduledCall:
        """Run ``callback(*args)`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + int(delay), callback, *args)

    def schedule_at(
        self, time: int, callback: Callable[..., None], *args: Any
    ) -> _ScheduledCall:
        """Run ``callback(*args)`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        call = _ScheduledCall(int(time), self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._queue, call)
        return call

    def event(self) -> Event:
        """Create a fresh (untriggered) :class:`Event` bound to this clock."""
        return Event(self)

    def spawn(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a process immediately (its first step runs at the current time)."""
        process = Process(self, generator, name)
        self.schedule(0, process._resume, None)
        return process

    def step(self) -> bool:
        """Run the next pending callback; return ``False`` if none is left."""
        queue = self._queue
        heappop = heapq.heappop
        while queue:
            call = heappop(queue)
            if call.cancelled:
                continue
            self._now = call.time
            call.callback(*call.args)
            if self._probes:
                for probe in self._probes:
                    probe()
            return True
        return False

    def run(self, until: Optional[int] = None) -> int:
        """Drain the event queue (optionally stopping at time ``until``).

        Returns the simulated time when the run stopped.  With ``until``,
        the clock is advanced to exactly ``until`` even if the last event
        fires earlier, so back-to-back ``run(until=...)`` calls compose.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        # The hottest loop in the repository: locals for the queue, the
        # heap pop and the probe list shave an attribute lookup from
        # every event (probes is aliased, not copied, so probes attached
        # mid-run — e.g. by a sanitizer on a VM provisioned during the
        # run — are still picked up).
        queue = self._queue
        heappop = heapq.heappop
        probes = self._probes
        try:
            while queue:
                head = queue[0]
                if head.cancelled:
                    heappop(queue)
                    continue
                if until is not None and head.time > until:
                    break
                heappop(queue)
                self._now = head.time
                head.callback(*head.args)
                if probes:
                    for probe in probes:
                        probe()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
        return self._now

    def run_process(self, generator: ProcessGenerator, name: str = "") -> Any:
        """Spawn a process, run the simulation to completion, return its value."""
        process = self.spawn(generator, name)
        self.run()
        if not process.finished:
            raise SimulationError(
                f"process {process.name!r} deadlocked (event queue drained)"
            )
        return process.value

    def pending_events(self) -> int:
        """Number of live (non-cancelled) calls still queued."""
        return sum(1 for call in self._queue if not call.cancelled)
