"""Discrete-event simulation substrate.

Everything in the reproduction runs on this small deterministic kernel:

* :class:`~repro.sim.engine.Simulator` — the event loop (integer-nanosecond
  clock, stable FIFO ordering for same-timestamp events);
* :class:`~repro.sim.engine.Process` — generator-coroutine processes that
  ``yield`` :class:`~repro.sim.engine.Timeout`, :class:`~repro.sim.engine.Event`
  or other processes;
* :class:`~repro.sim.cpu.CpuCore` — a round-robin processor used to model
  vCPUs, so that page-migration work and function execution contend for the
  same core exactly as in Section 6.2.2 of the paper;
* :class:`~repro.sim.costs.CostModel` — every timing constant in one frozen
  dataclass, calibrated in DESIGN.md.
"""

from repro.sim.costs import CostModel
from repro.sim.cpu import CpuCore
from repro.sim.engine import Event, Process, Simulator, Timeout
from repro.sim.rng import make_rng

__all__ = [
    "Simulator",
    "Event",
    "Process",
    "Timeout",
    "CpuCore",
    "CostModel",
    "make_rng",
]
