"""Deterministic random-number streams.

Every stochastic component (trace generator, allocator scatter policy,
workload jitter) draws from its own named stream derived from a single
experiment seed, so that adding randomness to one component never
perturbs another — a standard trick for reproducible systems simulation.
"""

from __future__ import annotations

import random

__all__ = ["make_rng"]


def make_rng(seed: int, stream: str = "") -> random.Random:
    """Create an independent :class:`random.Random` for ``(seed, stream)``.

    The same ``(seed, stream)`` pair always yields the same sequence, and
    distinct stream names yield (statistically) independent sequences.
    """
    return random.Random(f"{seed}/{stream}")
