"""Physical host: NUMA nodes, cores, and host memory accounting.

Mirrors the evaluation platform of Section 5.1: two NUMA nodes with 10
cores and 128 GiB each, SMT disabled, VMs pinned (CPUs and memory) to a
single node.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigError, OutOfMemory
from repro.sim.engine import Simulator
from repro.sim.cpu import CpuCore
from repro.units import GIB, format_bytes

__all__ = ["NumaNode", "HostAccount", "HostMachine"]


class NumaNode:
    """One NUMA node: a set of physical cores plus local memory."""

    def __init__(self, sim: Simulator, node_id: int, cores: int, memory_bytes: int):
        if cores <= 0 or memory_bytes <= 0:
            raise ConfigError("a NUMA node needs at least one core and some memory")
        self.node_id = node_id
        self.memory_bytes = memory_bytes
        self._used_bytes = 0
        self.cores: List[CpuCore] = [
            CpuCore(sim, name=f"node{node_id}-cpu{i}") for i in range(cores)
        ]

    # -- memory accounting ---------------------------------------------
    @property
    def used_bytes(self) -> int:
        """Host memory currently charged to guests on this node."""
        return self._used_bytes

    @property
    def free_bytes(self) -> int:
        """Host memory available for new charges on this node."""
        return self.memory_bytes - self._used_bytes

    def charge(self, size: int) -> None:
        """Account ``size`` bytes of host memory as in use (e.g. VM backing)."""
        if size < 0:
            raise ConfigError(f"negative charge: {size}")
        if self._used_bytes + size > self.memory_bytes:
            raise OutOfMemory(
                f"node {self.node_id}: cannot charge {format_bytes(size)}, "
                f"only {format_bytes(self.free_bytes)} free"
            )
        self._used_bytes += size

    def discharge(self, size: int) -> None:
        """Return ``size`` bytes to the host (e.g. after MADV_DONTNEED)."""
        if size < 0 or size > self._used_bytes:
            raise ConfigError(
                f"invalid discharge of {size} bytes (used={self._used_bytes})"
            )
        self._used_bytes -= size

    def __repr__(self) -> str:
        return (
            f"<NumaNode {self.node_id} cores={len(self.cores)} "
            f"used={format_bytes(self._used_bytes)}/{format_bytes(self.memory_bytes)}>"
        )


class HostAccount:
    """One guest's attributed view of a NUMA node.

    Every charge a VM makes against its node — boot memory, virtio-mem
    plugs, baseline mechanisms (DIMM, balloon, FPR) — flows through an
    account, which forwards to the underlying :class:`NumaNode` while
    keeping a per-guest ledger.  The ledger is what makes host-level
    conservation checkable: for any node, the sum of its resident VMs'
    :attr:`charged_bytes` must equal :attr:`NumaNode.used_bytes` (the
    ``host-conservation`` invariant).
    """

    def __init__(self, node: NumaNode):
        self.node = node
        #: Bytes this guest currently has charged against the node.
        self.charged_bytes = 0

    # -- forwarded node introspection ----------------------------------
    @property
    def node_id(self) -> int:
        return self.node.node_id

    @property
    def memory_bytes(self) -> int:
        return self.node.memory_bytes

    @property
    def used_bytes(self) -> int:
        return self.node.used_bytes

    @property
    def free_bytes(self) -> int:
        return self.node.free_bytes

    @property
    def cores(self) -> List[CpuCore]:
        return self.node.cores

    # -- attributed accounting -----------------------------------------
    def charge(self, size: int) -> None:
        """Charge ``size`` bytes to the node on this guest's behalf."""
        self.node.charge(size)
        self.charged_bytes += size

    def discharge(self, size: int) -> None:
        """Return ``size`` bytes previously charged through this account."""
        if size < 0 or size > self.charged_bytes:
            raise ConfigError(
                f"invalid account discharge of {size} bytes "
                f"(charged={self.charged_bytes})"
            )
        self.node.discharge(size)
        self.charged_bytes -= size

    def close(self) -> None:
        """Release everything still charged (guest shutdown)."""
        if self.charged_bytes:
            self.discharge(self.charged_bytes)

    def __repr__(self) -> str:
        return (
            f"<HostAccount node={self.node.node_id} "
            f"charged={format_bytes(self.charged_bytes)}>"
        )


class HostMachine:
    """The evaluation server: NUMA nodes hosting pinned VMs."""

    #: Defaults matching Section 5.1 (2 nodes × 10 cores × 128 GiB).
    DEFAULT_NODES = 2
    DEFAULT_CORES_PER_NODE = 10
    DEFAULT_MEMORY_PER_NODE = 128 * GIB

    def __init__(
        self,
        sim: Simulator,
        nodes: int = DEFAULT_NODES,
        cores_per_node: int = DEFAULT_CORES_PER_NODE,
        memory_per_node: int = DEFAULT_MEMORY_PER_NODE,
    ):
        self.sim = sim
        self.nodes: List[NumaNode] = [
            NumaNode(sim, node_id, cores_per_node, memory_per_node)
            for node_id in range(nodes)
        ]

    def node(self, node_id: int) -> NumaNode:
        """The NUMA node with the given id."""
        return self.nodes[node_id]

    @property
    def total_memory_bytes(self) -> int:
        """Installed host memory across all nodes."""
        return sum(node.memory_bytes for node in self.nodes)

    @property
    def total_used_bytes(self) -> int:
        """Host memory currently charged across all nodes."""
        return sum(node.used_bytes for node in self.nodes)

    def core_accounting(self) -> Dict[str, Dict[str, int]]:
        """Per-core, per-label CPU time (ns) for the whole machine."""
        table: Dict[str, Dict[str, int]] = {}
        for node in self.nodes:
            for core in node.cores:
                table[core.name] = core.accounting()
        return table

    def __repr__(self) -> str:
        return f"<HostMachine nodes={len(self.nodes)}>"
