"""Host machine model.

The paper evaluates on a two-socket Intel server (10 cores + 128 GiB per
NUMA node, SMT off) with VM vCPUs pinned to one node.  This package models
exactly what the evaluation depends on: a core inventory to pin vCPU
threads to, per-node host memory accounting (so reclaimed VM memory is
visibly returned to the host), and cgroup-style CPU accounting used to
attribute CPU time to the unplug path (Figure 7).
"""

from repro.host.cgroup import CpuAccountingGroup
from repro.host.machine import HostAccount, HostMachine, NumaNode

__all__ = ["HostMachine", "HostAccount", "NumaNode", "CpuAccountingGroup"]
