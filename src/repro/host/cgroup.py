"""cpuacct-style CPU accounting groups.

The paper pins the vCPU thread that serves virtio-mem interrupts to a
dedicated physical core and reads its CPU time through the CPU Accounting
cgroup controller (Section 5.4).  A :class:`CpuAccountingGroup` gives the
same view here: it aggregates the CPU time charged to a set of labels on a
set of cores, and can be sampled over simulated time to build the
cumulative-usage curve of Figure 7.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.sim.cpu import CpuCore

__all__ = ["CpuAccountingGroup"]


class CpuAccountingGroup:
    """Aggregate CPU usage of label prefixes across cores.

    Parameters
    ----------
    cores:
        The cores whose accounting tables feed this group.
    label_prefixes:
        Work labels counted by this group (prefix match), e.g.
        ``["virtio-mem"]`` for the unplug path.
    """

    def __init__(self, cores: Iterable[CpuCore], label_prefixes: Iterable[str]):
        self.cores: List[CpuCore] = list(cores)
        self.label_prefixes: Tuple[str, ...] = tuple(label_prefixes)
        self._samples: List[Tuple[int, int]] = []

    def usage_ns(self) -> int:
        """Total CPU-nanoseconds charged to this group so far."""
        return sum(
            core.busy_ns_for_prefix(prefix)
            for core in self.cores
            for prefix in self.label_prefixes
        )

    def sample(self, now_ns: int) -> int:
        """Record (and return) the current cumulative usage at ``now_ns``."""
        usage = self.usage_ns()
        self._samples.append((now_ns, usage))
        return usage

    @property
    def samples(self) -> List[Tuple[int, int]]:
        """Recorded ``(time_ns, cumulative_cpu_ns)`` samples, oldest first."""
        return list(self._samples)

    def __repr__(self) -> str:
        return (
            f"<CpuAccountingGroup prefixes={self.label_prefixes} "
            f"usage={self.usage_ns()}ns>"
        )
