"""Trace routing: dispatching a multi-function workload across VMs.

:class:`~repro.faas.runtime.FaasRuntime` replays one trace against one
agent — fine for the single-VM experiments, useless for a fleet.  The
:class:`TraceRouter` is its cluster-shaped sibling: traces arrive
addressed to a *function*, and a pluggable balancing policy picks which
VM's agent serves each invocation among those that deploy it.

Saturation is a value, not an exception.  Each VM gets an admission
budget of ``max_concurrency + max_queue_per_vm`` in-flight invocations;
when every eligible VM is at budget, the invocation is recorded as a
failed :class:`~repro.faas.records.InvocationRecord` (``error=
"rejected"``) plus a structured :class:`RouteRejection` — simulated
processes never see an exception cross a join.

Policies:

* **sticky** — bind each function to the first VM that accepts it and
  keep routing there (strict per-function locality: warm pools and
  HotMem partitions stay hot on one VM).
* **least-loaded** — the eligible VM with the fewest in-flight
  invocations.
* **memory-headroom** — the eligible VM whose device region has the most
  room above its current sizing target (spreads plug pressure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ClusterError, ConfigError
from repro.faas.agent import Agent
from repro.faas.records import InvocationRecord
from repro.obs.session import context_for
from repro.sim.engine import Process, Simulator, Timeout
from repro.workloads.traces import InvocationTrace

__all__ = [
    "VmSlot",
    "RouteRejection",
    "RoutingPolicy",
    "StickyByFunction",
    "LeastLoaded",
    "MemoryHeadroom",
    "ROUTING_POLICIES",
    "get_routing_policy",
    "TraceRouter",
]


class VmSlot:
    """The router's view of one registered VM/agent."""

    def __init__(self, agent: Agent, order: int, max_queue: int):
        self.agent = agent
        #: Registration order (deterministic tie-break).
        self.order = order
        #: Invocations currently inside this VM (serving or queued).
        self.in_flight = 0
        self._budget = self.max_concurrency + max_queue

    @property
    def name(self) -> str:
        return self.agent.vm.name

    @property
    def max_concurrency(self) -> int:
        """Concurrent instances this VM can ever run."""
        return self.agent.max_concurrency

    def deploys(self, function_name: str) -> bool:
        return function_name in self.agent.functions

    @property
    def has_budget(self) -> bool:
        """Whether another invocation may be admitted to this VM."""
        return self.in_flight < self._budget


@dataclass(frozen=True)
class RouteRejection:
    """One invocation the router could not place — a value, not an error."""

    time_ns: int
    function: str
    #: ``"saturated"`` (every eligible VM at budget) or
    #: ``"no-deployment"`` (no registered VM deploys the function).
    reason: str


class RoutingPolicy:
    """Base class: pick the slot that serves the next invocation."""

    name = "abstract"

    def select(
        self, function_name: str, eligible: Sequence[VmSlot]
    ) -> Optional[VmSlot]:
        """Choose among slots that deploy the function *and* have budget.

        ``eligible`` is in registration order; returning ``None``
        rejects the invocation.  Policies must be deterministic.
        """
        raise NotImplementedError


class StickyByFunction(RoutingPolicy):
    """Bind each function to one VM and stay there.

    The first VM that accepts a function keeps it; while the bound VM is
    at budget the invocation is rejected rather than spilled, preserving
    strict per-function locality (warm pools, HotMem partitions).
    """

    name = "sticky"

    def __init__(self) -> None:
        self._bound: Dict[str, str] = {}

    def select(
        self, function_name: str, eligible: Sequence[VmSlot]
    ) -> Optional[VmSlot]:
        bound = self._bound.get(function_name)
        if bound is not None:
            for slot in eligible:
                if slot.name == bound:
                    return slot
            return None
        if not eligible:
            return None
        choice = eligible[0]
        self._bound[function_name] = choice.name
        return choice

    def bound_vm(self, function_name: str) -> Optional[str]:
        """The VM a function is bound to (``None`` before first route)."""
        return self._bound.get(function_name)


class LeastLoaded(RoutingPolicy):
    """The eligible VM with the fewest in-flight invocations."""

    name = "least-loaded"

    def select(
        self, function_name: str, eligible: Sequence[VmSlot]
    ) -> Optional[VmSlot]:
        if not eligible:
            return None
        return min(eligible, key=lambda slot: (slot.in_flight, slot.order))


class MemoryHeadroom(RoutingPolicy):
    """The eligible VM with the most device-region headroom.

    Headroom is the VM's hotplug region minus what its live instances
    already require — routing there means the next cold start is least
    likely to wait on (or be refused) a plug.
    """

    name = "memory-headroom"

    def select(
        self, function_name: str, eligible: Sequence[VmSlot]
    ) -> Optional[VmSlot]:
        if not eligible:
            return None

        def headroom(slot: VmSlot) -> int:
            vm = slot.agent.vm
            return (
                vm.config.hotplug_region_bytes
                - slot.agent.target_plugged_bytes()
            )

        return min(eligible, key=lambda slot: (-headroom(slot), slot.order))


#: name → policy factory.
ROUTING_POLICIES: Dict[str, Callable[[], RoutingPolicy]] = {
    StickyByFunction.name: StickyByFunction,
    LeastLoaded.name: LeastLoaded,
    MemoryHeadroom.name: MemoryHeadroom,
}


def get_routing_policy(name: str) -> RoutingPolicy:
    """Instantiate a registered routing policy by name."""
    try:
        return ROUTING_POLICIES[name]()
    except KeyError:
        raise ConfigError(
            f"unknown routing policy {name!r} "
            f"(have: {', '.join(sorted(ROUTING_POLICIES))})"
        ) from None


class TraceRouter:
    """Fleet-wide dispatcher: traces in, placed invocations out.

    API mirrors :class:`~repro.faas.runtime.FaasRuntime` (``drive`` /
    ``run`` / ``records`` / ``records_for`` / ``successful_records`` /
    ``failure_count``) so experiments can swap one for the other.
    """

    def __init__(
        self,
        sim: Simulator,
        policy: str = "sticky",
        max_queue_per_vm: int = 0,
    ):
        if max_queue_per_vm < 0:
            raise ConfigError("max_queue_per_vm must be non-negative")
        self.sim = sim
        self.policy: RoutingPolicy = (
            policy
            if isinstance(policy, RoutingPolicy)
            else get_routing_policy(policy)
        )
        self.max_queue_per_vm = max_queue_per_vm
        #: Routing decisions are recorded through the simulator's tracing
        #: context (inert unless a trace session is installed).
        self.obs = context_for(sim).scope()
        self.slots: List[VmSlot] = []
        self._by_name: Dict[str, VmSlot] = {}
        self.records: List[InvocationRecord] = []
        self.rejections: List[RouteRejection] = []
        self._served: Dict[str, List[InvocationRecord]] = {}
        self._dispatchers: List[Process] = []

    def register(self, agent_or_handle) -> VmSlot:
        """Register a VM (an :class:`~repro.faas.agent.Agent` or a
        :class:`~repro.cluster.provision.VmHandle` with one deployed)."""
        agent = getattr(agent_or_handle, "agent", agent_or_handle)
        if not isinstance(agent, Agent):
            raise ClusterError(
                "register() needs an Agent or a VmHandle with a deployed agent"
            )
        name = agent.vm.name
        if name in self._by_name:
            raise ClusterError(f"VM {name} already registered with the router")
        slot = VmSlot(agent, order=len(self.slots), max_queue=self.max_queue_per_vm)
        self.slots.append(slot)
        self._by_name[name] = slot
        return slot

    # ------------------------------------------------------------------
    # Trace replay
    # ------------------------------------------------------------------
    def drive(self, trace: InvocationTrace) -> Process:
        """Replay a trace, routing each arrival to a VM (or rejecting)."""
        dispatcher = self.sim.spawn(
            self._dispatch_loop(trace), name=f"route-{trace.function_name}"
        )
        self._dispatchers.append(dispatcher)
        return dispatcher

    def _dispatch_loop(self, trace: InvocationTrace):
        for arrival_ns in trace:
            delay = arrival_ns - self.sim.now
            if delay > 0:
                yield Timeout(delay)
            self._route_one(trace.function_name, arrival_ns)
        return None

    def _route_one(self, function_name: str, arrival_ns: int) -> None:
        deployers = [s for s in self.slots if s.deploys(function_name)]
        eligible = [s for s in deployers if s.has_budget]
        slot = self.policy.select(function_name, eligible)
        if slot is None:
            reason = "no-deployment" if not deployers else "saturated"
            self.obs.event(
                "cluster.route",
                function=function_name,
                decision="rejected",
                reason=reason,
            )
            self.obs.inc("routes_total", decision="rejected")
            self._reject(function_name, arrival_ns, reason)
            return
        self.obs.event(
            "cluster.route",
            function=function_name,
            decision="placed",
            vm=slot.name,
        )
        self.obs.inc("routes_total", decision="placed")
        slot.in_flight += 1
        self.sim.spawn(
            self._handle_one(slot, function_name, arrival_ns),
            name=f"req-{function_name}@{slot.name}",
        )

    def _handle_one(self, slot: VmSlot, function_name: str, arrival_ns: int):
        try:
            record = yield from slot.agent.handle(function_name, arrival_ns)
        finally:
            slot.in_flight -= 1
        self.records.append(record)
        self._served.setdefault(slot.name, []).append(record)
        return record

    def _reject(self, function_name: str, arrival_ns: int, reason: str) -> None:
        now = self.sim.now
        self.rejections.append(
            RouteRejection(time_ns=now, function=function_name, reason=reason)
        )
        self.records.append(
            InvocationRecord(
                function=function_name,
                arrival_ns=arrival_ns,
                start_ns=now,
                end_ns=now,
                cold=False,
                ok=False,
                error="rejected",
            )
        )

    # ------------------------------------------------------------------
    # Execution / results (FaasRuntime-compatible)
    # ------------------------------------------------------------------
    def run(self, until_ns: Optional[int] = None) -> int:
        """Run the simulation (bounded, because recyclers loop forever)."""
        return self.sim.run(until=until_ns)

    def records_for(self, function_name: str) -> List[InvocationRecord]:
        """Completed records for one function, oldest first."""
        return [r for r in self.records if r.function == function_name]

    def records_on(self, vm_name: str) -> List[InvocationRecord]:
        """Records served by one VM (rejections belong to no VM)."""
        if vm_name not in self._by_name:
            raise ClusterError(f"VM {vm_name!r} not registered with the router")
        return list(self._served.get(vm_name, ()))

    def successful_records(
        self, function_name: Optional[str] = None
    ) -> List[InvocationRecord]:
        """Successful invocations across the fleet."""
        return [
            r
            for r in self.records
            if r.ok and (function_name is None or r.function == function_name)
        ]

    @property
    def failure_count(self) -> int:
        """Failed invocations (rejections included) across the fleet."""
        return sum(1 for r in self.records if not r.ok)

    @property
    def rejection_count(self) -> int:
        """Invocations the router could not place."""
        return len(self.rejections)
