"""Trace routing: dispatching a multi-function workload across VMs.

:class:`~repro.faas.runtime.FaasRuntime` replays one trace against one
agent — fine for the single-VM experiments, useless for a fleet.  The
:class:`TraceRouter` is its cluster-shaped sibling: traces arrive
addressed to a *function*, and a pluggable balancing policy picks which
VM's agent serves each invocation among those that deploy it.

Saturation is a value, not an exception.  Each VM gets an admission
budget of ``max_concurrency + max_queue_per_vm`` in-flight invocations;
when every eligible VM is at budget, the invocation is recorded as a
failed :class:`~repro.faas.records.InvocationRecord` (``error=
"rejected"``) plus a structured :class:`RouteRejection` — simulated
processes never see an exception cross a join.

Policies:

* **sticky** — bind each function to the first VM that accepts it and
  keep routing there (strict per-function locality: warm pools and
  HotMem partitions stay hot on one VM).
* **least-loaded** — the eligible VM with the fewest in-flight
  invocations.
* **memory-headroom** — the eligible VM whose device region has the most
  room above its current sizing target (spreads plug pressure).

Failure domains (see ``docs/faults.md``): with a
:class:`~repro.faults.RetryBudget` the router sheds invocations queued
past their deadline as ``RouteRejection(reason="deadline")`` and, when a
VM dies under it (host crash, OOM-kill), kills the victims' in-flight
request processes and re-dispatches each to a sibling VM — bounded by
``max_failovers`` hops.  With a
:class:`~repro.cluster.failover.BreakerPolicy` each slot additionally
gets a per-VM circuit breaker (closed → open → half-open) that takes a
failing VM out of rotation and probes it back in.  Both default to off,
which reproduces the pre-failover router byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.cluster.failover import (
    BreakerPolicy,
    BreakerTransition,
    CircuitBreaker,
)
from repro.errors import ClusterError, ConfigError
from repro.faas.agent import Agent
from repro.faas.records import InvocationRecord
from repro.faults.policy import NO_FAILOVER, RetryBudget
from repro.faults.recovery import RecoveryLog
from repro.obs.session import context_for
from repro.sim.engine import Process, Simulator, Timeout
from repro.workloads.traces import InvocationTrace

__all__ = [
    "VmSlot",
    "RouteRejection",
    "FailoverOutcome",
    "RoutingPolicy",
    "StickyByFunction",
    "LeastLoaded",
    "MemoryHeadroom",
    "ROUTING_POLICIES",
    "get_routing_policy",
    "TraceRouter",
]


@dataclass
class _InFlight:
    """One invocation currently placed on a slot (failover bookkeeping)."""

    function: str
    arrival_ns: int
    #: Failover hops already taken (0 = first placement).
    attempt: int
    process: Optional[Process] = None


class VmSlot:
    """The router's view of one registered VM/agent."""

    def __init__(
        self,
        agent: Agent,
        order: int,
        max_queue: int,
        breaker: Optional[CircuitBreaker] = None,
    ):
        self.agent = agent
        #: Registration order (deterministic tie-break).
        self.order = order
        #: Invocations currently inside this VM (serving or queued).
        self.in_flight = 0
        self._budget = self.max_concurrency + max_queue
        #: False while the router↔VM link is injected down: the VM is
        #: healthy and keeps serving what it has, but takes nothing new.
        self.link_up = True
        #: True once the VM died under the router (crash/OOM-kill);
        #: retired slots never serve again but keep their history.
        self.retired = False
        #: Per-VM circuit breaker (None unless the router has a
        #: :class:`~repro.cluster.failover.BreakerPolicy`).
        self.breaker = breaker
        #: Live entries for invocations placed here, so a VM death can
        #: fail each one over individually.
        self.inflight: List[_InFlight] = []

    @property
    def name(self) -> str:
        return self.agent.vm.name

    @property
    def max_concurrency(self) -> int:
        """Concurrent instances this VM can ever run."""
        return self.agent.max_concurrency

    def deploys(self, function_name: str) -> bool:
        return function_name in self.agent.functions

    @property
    def has_budget(self) -> bool:
        """Whether another invocation may be admitted to this VM."""
        return self.in_flight < self._budget


@dataclass(frozen=True)
class RouteRejection:
    """One invocation the router could not place — a value, not an error."""

    time_ns: int
    function: str
    #: ``"saturated"`` (every eligible VM at budget), ``"no-deployment"``
    #: (no registered VM deploys the function), ``"deadline"`` (queued
    #: past its :class:`~repro.faults.RetryBudget` deadline), or
    #: ``"vm-lost"`` / ``"oom-kill"`` (the serving VM died and the
    #: failover budget was exhausted).
    reason: str


@dataclass(frozen=True)
class FailoverOutcome:
    """What happened to one in-flight invocation when its VM died."""

    function: str
    arrival_ns: int
    #: Hops already taken when the VM died.
    attempt: int
    #: True when the invocation was re-dispatched to a sibling VM;
    #: False when it was rejected (budget exhausted or nowhere to go).
    rerouted: bool
    #: Why the VM died (``"vm-lost"`` / ``"oom-kill"``).
    reason: str


class RoutingPolicy:
    """Base class: pick the slot that serves the next invocation."""

    name = "abstract"

    def select(
        self, function_name: str, eligible: Sequence[VmSlot]
    ) -> Optional[VmSlot]:
        """Choose among slots that deploy the function *and* have budget.

        ``eligible`` is in registration order; returning ``None``
        rejects the invocation.  Policies must be deterministic.
        """
        raise NotImplementedError

    def invalidate(self, vm_name: str) -> None:
        """Forget any state pinned to a VM that just died (no-op by
        default; sticky policies drop their bindings here)."""


class StickyByFunction(RoutingPolicy):
    """Bind each function to one VM and stay there.

    The first VM that accepts a function keeps it; while the bound VM is
    at budget the invocation is rejected rather than spilled, preserving
    strict per-function locality (warm pools, HotMem partitions).
    """

    name = "sticky"

    def __init__(self) -> None:
        self._bound: Dict[str, str] = {}

    def select(
        self, function_name: str, eligible: Sequence[VmSlot]
    ) -> Optional[VmSlot]:
        bound = self._bound.get(function_name)
        if bound is not None:
            for slot in eligible:
                if slot.name == bound:
                    return slot
            return None
        if not eligible:
            return None
        choice = eligible[0]
        self._bound[function_name] = choice.name
        return choice

    def bound_vm(self, function_name: str) -> Optional[str]:
        """The VM a function is bound to (``None`` before first route)."""
        return self._bound.get(function_name)

    def invalidate(self, vm_name: str) -> None:
        """Drop every binding to a dead VM so functions re-bind."""
        self._bound = {
            fn: vm for fn, vm in self._bound.items() if vm != vm_name
        }


class LeastLoaded(RoutingPolicy):
    """The eligible VM with the fewest in-flight invocations."""

    name = "least-loaded"

    def select(
        self, function_name: str, eligible: Sequence[VmSlot]
    ) -> Optional[VmSlot]:
        if not eligible:
            return None
        return min(eligible, key=lambda slot: (slot.in_flight, slot.order))


class MemoryHeadroom(RoutingPolicy):
    """The eligible VM with the most device-region headroom.

    Headroom is the VM's hotplug region minus what its live instances
    already require — routing there means the next cold start is least
    likely to wait on (or be refused) a plug.
    """

    name = "memory-headroom"

    def select(
        self, function_name: str, eligible: Sequence[VmSlot]
    ) -> Optional[VmSlot]:
        if not eligible:
            return None

        def headroom(slot: VmSlot) -> int:
            vm = slot.agent.vm
            return (
                vm.config.hotplug_region_bytes
                - slot.agent.target_plugged_bytes()
            )

        return min(eligible, key=lambda slot: (-headroom(slot), slot.order))


#: name → policy factory.
ROUTING_POLICIES: Dict[str, Callable[[], RoutingPolicy]] = {
    StickyByFunction.name: StickyByFunction,
    LeastLoaded.name: LeastLoaded,
    MemoryHeadroom.name: MemoryHeadroom,
}


def get_routing_policy(name: str) -> RoutingPolicy:
    """Instantiate a registered routing policy by name."""
    try:
        return ROUTING_POLICIES[name]()
    except KeyError:
        raise ConfigError(
            f"unknown routing policy {name!r} "
            f"(have: {', '.join(sorted(ROUTING_POLICIES))})"
        ) from None


class TraceRouter:
    """Fleet-wide dispatcher: traces in, placed invocations out.

    API mirrors :class:`~repro.faas.runtime.FaasRuntime` (``drive`` /
    ``run`` / ``records`` / ``records_for`` / ``successful_records`` /
    ``failure_count``) so experiments can swap one for the other.
    """

    def __init__(
        self,
        sim: Simulator,
        policy: str = "sticky",
        max_queue_per_vm: int = 0,
        budget: RetryBudget = NO_FAILOVER,
        breakers: Optional[BreakerPolicy] = None,
    ):
        if max_queue_per_vm < 0:
            raise ConfigError("max_queue_per_vm must be non-negative")
        self.sim = sim
        self.policy: RoutingPolicy = (
            policy
            if isinstance(policy, RoutingPolicy)
            else get_routing_policy(policy)
        )
        self.max_queue_per_vm = max_queue_per_vm
        #: Queue deadlines + failover hops (inert :data:`NO_FAILOVER`
        #: default: wait forever, fail in place).
        self.budget = budget
        #: Per-VM circuit breakers (None = no breakers, the historical
        #: behaviour).
        self.breakers = breakers
        #: Routing decisions are recorded through the simulator's tracing
        #: context (inert unless a trace session is installed).
        self.obs = context_for(sim).scope()
        self.slots: List[VmSlot] = []
        self._by_name: Dict[str, VmSlot] = {}
        self.records: List[InvocationRecord] = []
        self.rejections: List[RouteRejection] = []
        #: Every breaker state change, in simulation order.
        self.transitions: List[BreakerTransition] = []
        #: Router-side recovery events (deadline sheds, failovers) land
        #: here when the failover coordinator wires a log in.
        self.recovery: Optional[RecoveryLog] = None
        self._served: Dict[str, List[InvocationRecord]] = {}
        self._dispatchers: List[Process] = []

    def register(self, agent_or_handle) -> VmSlot:
        """Register a VM (an :class:`~repro.faas.agent.Agent` or a
        :class:`~repro.cluster.provision.VmHandle` with one deployed)."""
        agent = getattr(agent_or_handle, "agent", agent_or_handle)
        if not isinstance(agent, Agent):
            raise ClusterError(
                "register() needs an Agent or a VmHandle with a deployed agent"
            )
        name = agent.vm.name
        if name in self._by_name:
            raise ClusterError(f"VM {name} already registered with the router")
        breaker = (
            CircuitBreaker(name, self.breakers)
            if self.breakers is not None
            else None
        )
        slot = VmSlot(
            agent,
            order=len(self.slots),
            max_queue=self.max_queue_per_vm,
            breaker=breaker,
        )
        self.slots.append(slot)
        self._by_name[name] = slot
        return slot

    # ------------------------------------------------------------------
    # Failure domains (driven by the FailoverCoordinator)
    # ------------------------------------------------------------------
    def is_registered(self, vm_name: str) -> bool:
        """Whether a VM was ever registered (retired slots included)."""
        return vm_name in self._by_name

    def slot(self, vm_name: str) -> VmSlot:
        """The slot registered under ``vm_name``."""
        try:
            return self._by_name[vm_name]
        except KeyError:
            raise ClusterError(
                f"VM {vm_name!r} not registered with the router"
            ) from None

    def retire(self, vm_name: str) -> None:
        """Take a dead VM out of rotation permanently.

        Sticky bindings to it are dropped so functions re-bind to a
        surviving VM on their next arrival.
        """
        self.slot(vm_name).retired = True
        self.policy.invalidate(vm_name)

    def set_link(self, vm_name: str, up: bool) -> None:
        """Flip the router↔VM link state (injected outage / heal).

        A downed link stops *new* placements only: in-flight work on the
        VM completes normally, because the VM itself is healthy.
        """
        self.slot(vm_name).link_up = up

    def fail_over(self, vm_name: str, reason: str) -> List[FailoverOutcome]:
        """A VM died: terminate its in-flight work and move it.

        Each in-flight invocation's request process is killed at its
        current yield point (``finally`` blocks unwind spans and
        accounting), then the invocation either re-dispatches to a
        sibling VM (while hops remain under ``budget.max_failovers``) or
        becomes a structured rejection with ``reason`` — never an
        exception across a join.  Call :meth:`retire` first so the
        re-dispatch can't pick the dying VM or its doomed siblings.
        """
        slot = self.slot(vm_name)
        outcomes: List[FailoverOutcome] = []
        for entry in list(slot.inflight):
            if entry.process is not None:
                entry.process.kill()
            if entry.attempt < self.budget.max_failovers:
                placed = self._route_one(
                    entry.function, entry.arrival_ns, attempt=entry.attempt + 1
                )
                rerouted = placed is not None
                if rerouted and self.recovery is not None:
                    self.recovery.record(
                        site="router.failover",
                        path="failed-over",
                        detect_ns=self.sim.now,
                        resolve_ns=self.sim.now,
                    )
            else:
                self._reject(entry.function, entry.arrival_ns, reason)
                rerouted = False
            outcomes.append(
                FailoverOutcome(
                    function=entry.function,
                    arrival_ns=entry.arrival_ns,
                    attempt=entry.attempt,
                    rerouted=rerouted,
                    reason=reason,
                )
            )
        slot.inflight = []
        return outcomes

    def _note_transition(self, transition: BreakerTransition) -> None:
        self.transitions.append(transition)
        self.obs.event(
            "cluster.breaker",
            vm=transition.vm,
            from_state=transition.from_state,
            to_state=transition.to_state,
            consecutive_failures=transition.consecutive_failures,
        )

    # ------------------------------------------------------------------
    # Trace replay
    # ------------------------------------------------------------------
    def drive(self, trace: InvocationTrace) -> Process:
        """Replay a trace, routing each arrival to a VM (or rejecting)."""
        dispatcher = self.sim.spawn(
            self._dispatch_loop(trace), name=f"route-{trace.function_name}"
        )
        self._dispatchers.append(dispatcher)
        return dispatcher

    def _dispatch_loop(self, trace: InvocationTrace):
        for arrival_ns in trace:
            delay = arrival_ns - self.sim.now
            if delay > 0:
                yield Timeout(delay)
            self._route_one(trace.function_name, arrival_ns)
        return None

    def _route_one(
        self, function_name: str, arrival_ns: int, attempt: int = 0
    ) -> Optional[str]:
        """Place (or reject) one arrival; returns the serving VM's name.

        ``attempt`` counts failover hops already taken — it rides along
        on the in-flight entry so a re-dispatched invocation whose new
        VM *also* dies keeps consuming the same bounded budget.
        """
        deployers = [
            s for s in self.slots if s.deploys(function_name) and not s.retired
        ]
        eligible = []
        for s in deployers:
            if not s.link_up or not s.has_budget:
                continue
            if s.breaker is not None:
                transition = s.breaker.poll(self.sim.now)
                if transition is not None:
                    self._note_transition(transition)
                if not s.breaker.allows():
                    continue
            eligible.append(s)
        slot = self.policy.select(function_name, eligible)
        decision = "placed"
        if slot is None and eligible and self.budget.max_failovers > 0:
            # The policy's preferred VM is gone/ineligible but siblings
            # can serve: a failover-enabled router spills rather than
            # strands (sticky locality resumes once the function
            # re-binds).
            slot = min(eligible, key=lambda s: (s.in_flight, s.order))
            decision = "rerouted"
            if self.recovery is not None:
                self.recovery.record(
                    site="router.route",
                    path="rerouted",
                    detect_ns=self.sim.now,
                    resolve_ns=self.sim.now,
                )
        if slot is None:
            deploys_anywhere = any(
                s.deploys(function_name) for s in self.slots
            )
            reason = "no-deployment" if not deploys_anywhere else "saturated"
            self._reject(function_name, arrival_ns, reason)
            return None
        self.obs.event(
            "cluster.route",
            function=function_name,
            decision=decision,
            vm=slot.name,
        )
        self.obs.inc("routes_total", decision="placed")
        if slot.breaker is not None:
            slot.breaker.on_dispatch()
        entry = _InFlight(
            function=function_name, arrival_ns=arrival_ns, attempt=attempt
        )
        slot.in_flight += 1
        slot.inflight.append(entry)
        entry.process = self.sim.spawn(
            self._handle_one(slot, entry),
            name=f"req-{function_name}@{slot.name}",
        )
        return slot.name

    def _handle_one(self, slot: VmSlot, entry: _InFlight):
        try:
            record = yield from slot.agent.handle(
                entry.function, entry.arrival_ns, deadline_ns=self.budget.deadline_ns
            )
        finally:
            # Runs on normal completion AND when fail_over kills this
            # process: the slot's accounting never leaks either way.
            slot.in_flight -= 1
            if entry in slot.inflight:
                slot.inflight.remove(entry)
        if slot.breaker is not None:
            transition = (
                slot.breaker.record_success(self.sim.now)
                if record.ok
                else slot.breaker.record_failure(self.sim.now)
            )
            if transition is not None:
                self._note_transition(transition)
        if record.error == "deadline":
            # The agent shed this invocation from its queue: surface it
            # as a structured rejection alongside the failed record.
            self.rejections.append(
                RouteRejection(
                    time_ns=self.sim.now,
                    function=entry.function,
                    reason="deadline",
                )
            )
            self.obs.event(
                "cluster.deadline", function=entry.function, vm=slot.name
            )
            if self.recovery is not None:
                self.recovery.record(
                    site="router.queue",
                    path="deadline",
                    detect_ns=entry.arrival_ns,
                    resolve_ns=self.sim.now,
                )
        self.records.append(record)
        self._served.setdefault(slot.name, []).append(record)
        return record

    def _reject(self, function_name: str, arrival_ns: int, reason: str) -> None:
        self.obs.event(
            "cluster.route",
            function=function_name,
            decision="rejected",
            reason=reason,
        )
        self.obs.inc("routes_total", decision="rejected")
        now = self.sim.now
        self.rejections.append(
            RouteRejection(time_ns=now, function=function_name, reason=reason)
        )
        self.records.append(
            InvocationRecord(
                function=function_name,
                arrival_ns=arrival_ns,
                start_ns=now,
                end_ns=now,
                cold=False,
                ok=False,
                error="rejected",
            )
        )

    # ------------------------------------------------------------------
    # Execution / results (FaasRuntime-compatible)
    # ------------------------------------------------------------------
    def run(self, until_ns: Optional[int] = None) -> int:
        """Run the simulation (bounded, because recyclers loop forever)."""
        return self.sim.run(until=until_ns)

    def records_for(self, function_name: str) -> List[InvocationRecord]:
        """Completed records for one function, oldest first."""
        return [r for r in self.records if r.function == function_name]

    def records_on(self, vm_name: str) -> List[InvocationRecord]:
        """Records served by one VM (rejections belong to no VM)."""
        if vm_name not in self._by_name:
            raise ClusterError(f"VM {vm_name!r} not registered with the router")
        return list(self._served.get(vm_name, ()))

    def successful_records(
        self, function_name: Optional[str] = None
    ) -> List[InvocationRecord]:
        """Successful invocations across the fleet."""
        return [
            r
            for r in self.records
            if r.ok and (function_name is None or r.function == function_name)
        ]

    @property
    def failure_count(self) -> int:
        """Failed invocations (rejections included) across the fleet."""
        return sum(1 for r in self.records if not r.ok)

    @property
    def rejection_count(self) -> int:
        """Invocations the router could not place."""
        return len(self.rejections)
