"""The cluster layer: fleets, placement, routing, density arbitration.

Everything above a single VM lives here.  A :class:`Fleet` owns N
:class:`~repro.host.machine.HostMachine`s and is the only place VMs get
built (``provision(VmSpec) -> VmHandle``); a
:class:`~repro.cluster.admission.DensityArbiter` decides how many VMs a
host takes by charging each one its *committed* (expected-resident)
bytes rather than its peak footprint; a :class:`TraceRouter` spreads
multi-function Azure workloads over the provisioned agents under a
pluggable balancing policy, rejecting structurally when saturated.

See ``docs/cluster.md`` for the design tour.
"""

from repro.cluster.admission import (
    DEFAULT_ARBITRATION,
    AdmissionResult,
    ArbitrationPolicy,
    DensityArbiter,
)
from repro.cluster.failover import (
    BreakerPolicy,
    BreakerTransition,
    CircuitBreaker,
    EvacuationResult,
    FailoverCoordinator,
    FailoverPolicy,
    Watchdog,
)
from repro.cluster.placement import (
    BestFitPlacement,
    FirstFitPlacement,
    NodeCandidate,
    NumaSpreadPlacement,
    PlacementPolicy,
    get_placement_policy,
)
from repro.cluster.provision import Fleet, VmHandle, VmSpec, provision_vm
from repro.cluster.routing import (
    LeastLoaded,
    MemoryHeadroom,
    RouteRejection,
    RoutingPolicy,
    StickyByFunction,
    TraceRouter,
    VmSlot,
    get_routing_policy,
)

__all__ = [
    "ArbitrationPolicy",
    "DEFAULT_ARBITRATION",
    "AdmissionResult",
    "DensityArbiter",
    "NodeCandidate",
    "PlacementPolicy",
    "FirstFitPlacement",
    "BestFitPlacement",
    "NumaSpreadPlacement",
    "get_placement_policy",
    "VmSpec",
    "VmHandle",
    "Fleet",
    "provision_vm",
    "TraceRouter",
    "VmSlot",
    "RouteRejection",
    "RoutingPolicy",
    "StickyByFunction",
    "LeastLoaded",
    "MemoryHeadroom",
    "get_routing_policy",
    "BreakerPolicy",
    "BreakerTransition",
    "CircuitBreaker",
    "EvacuationResult",
    "FailoverCoordinator",
    "FailoverPolicy",
    "Watchdog",
]
