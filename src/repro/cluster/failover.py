"""Fleet failure recovery: evacuation, circuit breaking, watchdogging.

This module is the recovery half of the fleet failure domains
(:mod:`repro.faults.domains` is the injection half).  It owns four
pieces:

* :class:`CircuitBreaker` — the router's per-VM closed → open →
  half-open state machine.  Consecutive failures trip it open; after a
  reset timeout it admits a bounded number of probes half-open, and one
  probe outcome decides between closing and re-opening.  Every state
  change is a :class:`BreakerTransition` *value* the caller must check
  (the ``unchecked-result`` lint rule knows about it).
* :class:`EvacuationResult` — the outcome of re-provisioning a crashed
  host's VMs through normal placement/admission, evacuated and rejected
  names both spelled out.
* :class:`Watchdog` — detects wedged recyclers purely from heartbeat
  staleness (it never reads the wedge flag: detection must work the way
  a real control plane's would) and hands them to a remediation
  callback.
* :class:`FailoverCoordinator` — the :class:`~repro.faults.domains
  .DomainTarget` implementation that glues the above to the
  :class:`~repro.cluster.provision.Fleet` and
  :class:`~repro.cluster.routing.TraceRouter`: host crashes retire and
  fail over the victims' routes, kill the VMs atomically (ledger
  reconciled in the same callback) and evacuate the spec elsewhere;
  OOM-kills do the same for one VM; pressure spikes squeeze a node
  through the fleet's external accounts; link losses flip the router's
  link state and heal after an outage window.  Every failure window is
  a ``repro.obs`` span parented on the triggering fault's span, and
  every injected fault is eventually resolved (the ``unresolved() == 0``
  completeness gate holds across a whole storm).

See ``docs/faults.md`` ("Failure domains") for the full flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.faults.domains import DomainScheduler
from repro.faults.injector import FaultInjector, InjectedFault
from repro.faults.recovery import RecoveryLog
from repro.faults.sites import (
    AGENT_WEDGE,
    HOST_CRASH,
    HOST_PRESSURE_SPIKE,
    ROUTER_LINK_DOWN,
    VM_OOM_KILL,
)
from repro.obs.span import NULL_SPAN, SpanLike
from repro.sim.engine import Process, Simulator, Timeout
from repro.units import MS, SEC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.provision import Fleet, VmHandle
    from repro.cluster.routing import TraceRouter
    from repro.faas.agent import Agent

__all__ = [
    "BreakerPolicy",
    "BreakerTransition",
    "CircuitBreaker",
    "EvacuationResult",
    "FailoverPolicy",
    "Watchdog",
    "FailoverCoordinator",
]


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BreakerTransition:
    """One circuit-breaker state change — a value the caller must check."""

    vm: str
    from_state: str
    to_state: str
    time_ns: int
    #: Consecutive failures observed when the transition happened.
    consecutive_failures: int


@dataclass(frozen=True)
class BreakerPolicy:
    """Knobs for the router's per-VM circuit breakers."""

    #: Consecutive failures that trip the breaker open.
    failure_threshold: int = 3
    #: Open-state dwell before probing half-open.
    reset_timeout_ns: int = 500 * MS
    #: Probes admitted while half-open (further traffic is refused until
    #: a probe outcome decides the state).
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold <= 0:
            raise ConfigError(
                f"failure_threshold must be positive, got {self.failure_threshold}"
            )
        if self.reset_timeout_ns <= 0:
            raise ConfigError("reset_timeout_ns must be positive")
        if self.half_open_probes <= 0:
            raise ConfigError(
                f"half_open_probes must be positive, got {self.half_open_probes}"
            )


class CircuitBreaker:
    """Closed → open → half-open state machine for one VM's route.

    The router polls :meth:`poll` before eligibility checks (open
    breakers move to half-open once the reset timeout elapses), gates
    dispatch on :meth:`allows`, counts half-open probes via
    :meth:`on_dispatch`, and reports outcomes through
    :meth:`record_success` / :meth:`record_failure`.  The three
    outcome-bearing methods return the :class:`BreakerTransition` they
    caused (or ``None``); callers must inspect it — transitions are how
    breaker activity reaches traces and reports.
    """

    def __init__(self, vm: str, policy: BreakerPolicy):
        self.vm = vm
        self.policy = policy
        self.state = "closed"
        self.consecutive_failures = 0
        self.opened_ns: Optional[int] = None
        self.half_open_inflight = 0

    def _transition(self, to_state: str, now: int) -> BreakerTransition:
        transition = BreakerTransition(
            vm=self.vm,
            from_state=self.state,
            to_state=to_state,
            time_ns=now,
            consecutive_failures=self.consecutive_failures,
        )
        self.state = to_state
        return transition

    def poll(self, now: int) -> Optional[BreakerTransition]:
        """Advance open → half-open once the reset timeout elapses."""
        if self.state != "open" or self.opened_ns is None:
            return None
        if now - self.opened_ns < self.policy.reset_timeout_ns:
            return None
        self.half_open_inflight = 0
        return self._transition("half-open", now)

    def allows(self) -> bool:
        """Whether another dispatch may pass the breaker right now."""
        if self.state == "closed":
            return True
        if self.state == "half-open":
            return self.half_open_inflight < self.policy.half_open_probes
        return False

    def on_dispatch(self) -> None:
        """Count a dispatch that passed a half-open breaker (a probe)."""
        if self.state == "half-open":
            self.half_open_inflight += 1

    def record_success(self, now: int) -> Optional[BreakerTransition]:
        """A routed invocation succeeded; half-open closes on proof."""
        self.consecutive_failures = 0
        if self.state == "half-open":
            self.half_open_inflight = 0
            return self._transition("closed", now)
        return None

    def record_failure(self, now: int) -> Optional[BreakerTransition]:
        """A routed invocation failed; enough in a row trip the breaker."""
        self.consecutive_failures += 1
        if self.state == "half-open":
            self.half_open_inflight = 0
            self.opened_ns = now
            return self._transition("open", now)
        if (
            self.state == "closed"
            and self.consecutive_failures >= self.policy.failure_threshold
        ):
            self.opened_ns = now
            return self._transition("open", now)
        return None

    def __repr__(self) -> str:
        return (
            f"<CircuitBreaker {self.vm} {self.state} "
            f"failures={self.consecutive_failures}>"
        )


# ----------------------------------------------------------------------
# Evacuation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EvacuationResult:
    """Outcome of evacuating one crashed host — a value, never a raise."""

    host_index: int
    #: Replacement VM names successfully re-admitted elsewhere.
    evacuated: Tuple[str, ...]
    #: Victim VM names whose spec no surviving host would admit.
    rejected: Tuple[str, ...]
    completed_ns: int

    @property
    def ok(self) -> bool:
        """Whether every victim found a new home."""
        return not self.rejected


@dataclass(frozen=True)
class FailoverPolicy:
    """Timing knobs for the fleet's failure recovery machinery."""

    #: Per-VM re-provisioning penalty during an evacuation (boot + image
    #: pull on the new host; paid serially per victim).
    evacuation_coldstart_ns: int = 250 * MS
    #: Fraction of a node's *free* bytes a pressure spike squeezes.
    spike_fraction: float = 0.5
    #: How long a pressure spike squats on the node.
    spike_duration_ns: int = 1 * SEC
    #: How long a router↔VM link stays down before healing.
    link_outage_ns: int = 500 * MS
    #: Watchdog sampling cadence.
    watchdog_interval_ns: int = 250 * MS
    #: Heartbeat staleness that marks a recycler wedged.  Must exceed
    #: the agents' recycle interval or healthy recyclers get flagged.
    watchdog_timeout_ns: int = 2 * SEC

    def __post_init__(self) -> None:
        for name in (
            "evacuation_coldstart_ns",
            "spike_duration_ns",
            "link_outage_ns",
            "watchdog_interval_ns",
            "watchdog_timeout_ns",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if not 0.0 <= self.spike_fraction <= 1.0:
            raise ConfigError(
                f"spike_fraction must be in [0, 1], got {self.spike_fraction}"
            )


# ----------------------------------------------------------------------
# Watchdog
# ----------------------------------------------------------------------
class Watchdog:
    """Detect wedged recyclers from heartbeat staleness alone.

    Samples every live agent on a fixed cadence; an agent whose recycler
    should still be running but whose last heartbeat is older than the
    timeout is handed to ``on_wedge(vm_name, agent)``.  Detection never
    reads the agent's wedge flag — staleness is the only signal, exactly
    as an external control plane would see it.
    """

    def __init__(
        self,
        sim: Simulator,
        agents_fn: Callable[[], List["Agent"]],
        on_wedge: Callable[[str, "Agent"], None],
        interval_ns: int,
        timeout_ns: int,
        until_ns: int,
    ):
        if interval_ns <= 0 or timeout_ns <= 0:
            raise ConfigError("watchdog interval and timeout must be positive")
        self.sim = sim
        self.agents_fn = agents_fn
        self.on_wedge = on_wedge
        self.interval_ns = int(interval_ns)
        self.timeout_ns = int(timeout_ns)
        self.until_ns = int(until_ns)
        self.detections = 0
        self._stopped = False
        self.process: Optional[Process] = None

    def start(self) -> Process:
        """Spawn the sampling loop (idempotent)."""
        if self.process is None:
            self.process = self.sim.spawn(self._run(), name="fleet-watchdog")
        return self.process

    def stop(self) -> None:
        self._stopped = True

    def _run(self):
        while not self._stopped and self.sim.now + self.interval_ns <= self.until_ns:
            yield Timeout(self.interval_ns)
            if self._stopped:
                break
            now = self.sim.now
            for agent in self.agents_fn():
                if self._suspect(agent, now):
                    self.detections += 1
                    self.on_wedge(agent.vm.name, agent)
        return self.detections

    def _suspect(self, agent: "Agent", now: int) -> bool:
        if agent._stopped or not agent.vm._alive:
            return False
        if agent._recycler is None or agent.last_heartbeat_ns is None:
            return False
        until = agent._recycler_until
        if until is not None and now > until:
            # The recycler's horizon passed; silence is legitimate.
            return False
        return now - agent.last_heartbeat_ns > self.timeout_ns


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
class FailoverCoordinator:
    """The fleet's repair crew: turns injected domain faults into
    retire/fail-over/kill/evacuate/heal sequences.

    Implements :class:`~repro.faults.domains.DomainTarget`.  All state
    mutation that must be atomic from the sanitizer's point of view
    (killing VMs, reconciling the arbiter ledger) happens inside the
    fault-dispatch callback; only the *recovery* work that takes
    simulated time (evacuation cold starts, spike and outage windows)
    runs as spawned processes — each of which resolves its fault in a
    ``finally``, so the completeness gate survives truncation.
    """

    def __init__(
        self,
        fleet: "Fleet",
        router: "TraceRouter",
        injector: FaultInjector,
        policy: Optional[FailoverPolicy] = None,
    ):
        self.fleet = fleet
        self.router = router
        self.injector = injector
        self.policy = policy if policy is not None else FailoverPolicy()
        self.sim = fleet.sim
        #: Coordinator spans/records carry ``vm="fleet"`` so the fleet
        #: recovery log's span consumer never swallows per-VM records.
        self.obs = fleet._obs_context.scope(vm="fleet")
        self.recovery = RecoveryLog(obs=self.obs)
        self.injector.bind_sim(self.sim)
        self.injector.bind_obs(self.obs)
        #: Router-side recovery (deadline sheds, failovers) lands in the
        #: same fleet-level log.
        router.recovery = self.recovery
        #: vm name → unresolved ``agent.wedge`` fault awaiting detection.
        self._pending_wedges: Dict[str, InjectedFault] = {}
        self.evacuations: List[EvacuationResult] = []
        self.scheduler: Optional[DomainScheduler] = None
        self.watchdog: Optional[Watchdog] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, tick_ns: int, until_ns: int, seed: int = 0) -> None:
        """Arm the domain scheduler and the watchdog up to ``until_ns``."""
        self.scheduler = DomainScheduler(
            self.sim,
            self.injector,
            target=self,
            tick_ns=tick_ns,
            until_ns=until_ns,
            seed=seed,
        )
        self.scheduler.start()
        self.watchdog = Watchdog(
            self.sim,
            agents_fn=self.fleet.agents,
            on_wedge=self._on_wedge_detected,
            interval_ns=self.policy.watchdog_interval_ns,
            timeout_ns=self.policy.watchdog_timeout_ns,
            until_ns=until_ns,
        )
        self.watchdog.start()

    def finalize(self) -> None:
        """Wind the storm down; resolve wedges nobody got to detect."""
        if self.scheduler is not None:
            self.scheduler.stop()
        if self.watchdog is not None:
            self.watchdog.stop()
        for name in sorted(self._pending_wedges):
            self.injector.resolve(self._pending_wedges[name], "absorbed")
        self._pending_wedges.clear()

    # ------------------------------------------------------------------
    # DomainTarget: victim pools
    # ------------------------------------------------------------------
    def live_hosts(self) -> List[int]:
        return [
            index
            for index in range(len(self.fleet.hosts))
            if index not in self.fleet.down_hosts
        ]

    def live_vms(self) -> List[str]:
        return [
            h.name
            for h in self.fleet.handles
            if h.vm._alive and h.agent is not None
        ]

    # ------------------------------------------------------------------
    # DomainTarget: host crash
    # ------------------------------------------------------------------
    def crash_host(self, host_index: int, fault: InjectedFault) -> None:
        victims = self.fleet.residents(host_index)
        span = self.obs.span(
            "failover.host-crash",
            parent=self._fault_parent(fault),
            host=host_index,
            victims=len(victims),
        )
        names = [h.name for h in victims]
        # Retire every victim's route *before* failing any of them over,
        # so a failed-over invocation can never land on a doomed sibling
        # on the same host.
        for name in names:
            if self.router.is_registered(name):
                self.router.retire(name)
        for name in names:
            if self.router.is_registered(name):
                self.router.fail_over(name, "vm-lost")
        for name in names:
            pending = self._pending_wedges.pop(name, None)
            if pending is not None:
                self.injector.resolve(pending, "absorbed")
        # Atomic from the sim's viewpoint: VM deaths, host-down marking
        # and ledger reconciliation all land in this one callback.
        self.fleet.crash_host(host_index)
        self.sim.spawn(
            self._evacuate(host_index, victims, fault, span),
            name=f"evacuate-host{host_index}",
        )

    def _evacuate(
        self,
        host_index: int,
        victims: List["VmHandle"],
        fault: InjectedFault,
        span: SpanLike,
    ):
        evacuated = rejected = 0

        def on_replacement(dead: "VmHandle", replacement: "VmHandle") -> None:
            if self.router.is_registered(dead.name):
                self.router.register(replacement)
            self.recovery.record(
                site=HOST_CRASH,
                path="evacuated",
                detect_ns=fault.time_ns,
                resolve_ns=self.sim.now,
                parent=span,
            )

        try:
            result = yield from self.fleet.evacuate(
                host_index,
                victims,
                self.policy.evacuation_coldstart_ns,
                on_replacement=on_replacement,
            )
            for _ in result.rejected:
                self.recovery.record(
                    site=HOST_CRASH,
                    path="evacuation-rejected",
                    detect_ns=fault.time_ns,
                    resolve_ns=self.sim.now,
                    parent=span,
                )
            self.evacuations.append(result)
            evacuated, rejected = len(result.evacuated), len(result.rejected)
            return result
        finally:
            self.injector.resolve(
                fault, "evacuated", attempts=max(1, len(victims))
            )
            span.close(evacuated=evacuated, rejected=rejected)

    # ------------------------------------------------------------------
    # DomainTarget: per-VM faults
    # ------------------------------------------------------------------
    def oom_kill(self, vm_name: str, fault: InjectedFault) -> None:
        handle = self.fleet.handle(vm_name)
        if not handle.vm._alive:
            self.injector.resolve(fault, "absorbed")
            return
        span = self.obs.span(
            "failover.oom-kill", parent=self._fault_parent(fault), victim=vm_name
        )
        if self.router.is_registered(vm_name):
            self.router.retire(vm_name)
            self.router.fail_over(vm_name, "oom-kill")
        pending = self._pending_wedges.pop(vm_name, None)
        if pending is not None:
            self.injector.resolve(pending, "absorbed")
        self.fleet.kill_vm(vm_name)
        self.sim.spawn(
            self._reprovision_one(handle, fault, span),
            name=f"reprovision-{vm_name}",
        )

    def _reprovision_one(
        self, dead: "VmHandle", fault: InjectedFault, span: SpanLike
    ):
        resolution = "dropped"
        try:
            yield Timeout(self.policy.evacuation_coldstart_ns)
            replacement, admission = self.fleet.reprovision(dead)
            if replacement is None:
                self.recovery.record(
                    site=VM_OOM_KILL,
                    path="evacuation-rejected",
                    detect_ns=fault.time_ns,
                    resolve_ns=self.sim.now,
                    parent=span,
                )
                span.close(replacement="", reason=admission.reason)
                return None
            resolution = "reprovisioned"
            if self.router.is_registered(dead.name):
                self.router.register(replacement)
            self.recovery.record(
                site=VM_OOM_KILL,
                path="reprovisioned",
                detect_ns=fault.time_ns,
                resolve_ns=self.sim.now,
                parent=span,
            )
            span.close(replacement=replacement.name, reason="")
            return replacement
        finally:
            self.injector.resolve(fault, resolution)

    def wedge_agent(self, vm_name: str, fault: InjectedFault) -> None:
        handle = self.fleet.handle(vm_name)
        agent = handle.agent
        if (
            agent is None
            or not handle.vm._alive
            or agent._stopped
            or agent._recycler is None
            or agent.wedged
        ):
            self.injector.resolve(fault, "absorbed")
            return
        agent.wedge()
        self._pending_wedges[vm_name] = fault

    def _on_wedge_detected(self, vm_name: str, agent: "Agent") -> None:
        """Watchdog callback: force-recycle a heartbeat-stale agent."""
        if not agent.wedged:
            # Stale for some other reason (e.g. a horizon race); the
            # remediation below would double-start the recycler.
            return
        fault = self._pending_wedges.pop(vm_name, None)
        pass_process = agent.force_recycle()
        self.obs.event(
            "failover.force-recycle",
            victim=vm_name,
            remediated=pass_process is not None,
        )
        if fault is None:
            return
        self.injector.resolve(
            fault,
            "force-recycled" if pass_process is not None else "absorbed",
        )
        if pass_process is not None:
            self.recovery.record(
                site=AGENT_WEDGE,
                path="force-recycled",
                detect_ns=fault.time_ns,
                resolve_ns=self.sim.now,
                parent=self._fault_parent(fault),
            )

    def link_down(self, vm_name: str, fault: InjectedFault) -> None:
        if not self.router.is_registered(vm_name) or self.router.slot(
            vm_name
        ).retired:
            self.injector.resolve(fault, "absorbed")
            return
        span = self.obs.span(
            "failover.link-down", parent=self._fault_parent(fault), victim=vm_name
        )
        self.router.set_link(vm_name, False)
        self.sim.spawn(
            self._heal_link(vm_name, fault, span), name=f"heal-link-{vm_name}"
        )

    def _heal_link(self, vm_name: str, fault: InjectedFault, span: SpanLike):
        resolution = "absorbed"
        try:
            yield Timeout(self.policy.link_outage_ns)
            if (
                self.router.is_registered(vm_name)
                and not self.router.slot(vm_name).retired
            ):
                self.router.set_link(vm_name, True)
                resolution = "healed"
                self.recovery.record(
                    site=ROUTER_LINK_DOWN,
                    path="link-down",
                    detect_ns=fault.time_ns,
                    resolve_ns=self.sim.now,
                    parent=span,
                )
            return None
        finally:
            self.injector.resolve(fault, resolution)
            span.close(healed=resolution == "healed")

    # ------------------------------------------------------------------
    # DomainTarget: host pressure
    # ------------------------------------------------------------------
    def pressure_spike(self, host_index: int, fault: InjectedFault) -> None:
        node = self.fleet.hosts[host_index].nodes[0]
        want = int(self.policy.spike_fraction * node.free_bytes)
        granted = self.fleet.external_charge(host_index, node.node_id, want)
        if granted <= 0:
            self.injector.resolve(fault, "absorbed")
            return
        span = self.obs.span(
            "failover.pressure-spike",
            parent=self._fault_parent(fault),
            host=host_index,
            granted_bytes=granted,
        )
        self.sim.spawn(
            self._heal_spike(host_index, node.node_id, granted, fault, span),
            name=f"heal-spike-host{host_index}",
        )

    def _heal_spike(
        self,
        host_index: int,
        node_id: int,
        granted: int,
        fault: InjectedFault,
        span: SpanLike,
    ):
        try:
            yield Timeout(self.policy.spike_duration_ns)
            self.fleet.external_release(host_index, node_id, granted)
            self.recovery.record(
                site=HOST_PRESSURE_SPIKE,
                path="healed",
                detect_ns=fault.time_ns,
                resolve_ns=self.sim.now,
                parent=span,
            )
            return None
        finally:
            self.injector.resolve(fault, "healed")
            span.close()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _fault_parent(fault: InjectedFault) -> SpanLike:
        return fault.span if fault.span is not None else NULL_SPAN

    def __repr__(self) -> str:
        return (
            f"<FailoverCoordinator evacuations={len(self.evacuations)} "
            f"pending_wedges={len(self._pending_wedges)}>"
        )
