"""Pluggable VM placement over a fleet's NUMA nodes.

Placement answers one question: *which node takes the next VM?*  The
candidates a policy sees are already arbitration-filtered views
(:class:`NodeCandidate`), carrying each node's committed-byte headroom
under the fleet's :class:`~repro.cluster.admission.ArbitrationPolicy` —
a policy never needs to re-derive oversubscription math, it only ranks
nodes that could legally take the request.

Three policies mirror the classic bin-packing trade-offs:

* **first-fit** — lowest (host, node) that fits; fast, fills hosts in
  order (the densest packing for identical VMs).
* **best-fit** — the fitting node with the least remaining headroom;
  minimizes fragmentation of large contiguous headroom.
* **numa-spread** — the fitting node with the fewest resident VMs;
  spreads interrupt/vCPU pressure at the cost of packing density.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from repro.errors import ConfigError

__all__ = [
    "NodeCandidate",
    "PlacementPolicy",
    "FirstFitPlacement",
    "BestFitPlacement",
    "NumaSpreadPlacement",
    "PLACEMENT_POLICIES",
    "get_placement_policy",
]


@dataclass(frozen=True)
class NodeCandidate:
    """Arbitration's view of one NUMA node offered to a placement policy."""

    host_index: int
    node_id: int
    #: Admission ceiling for the node (memory × limit fraction).
    limit_bytes: int
    #: Committed bytes already admitted against the node.
    committed_bytes: int
    #: VMs currently resident on the node.
    resident_vms: int

    @property
    def headroom_bytes(self) -> int:
        """Committed-byte headroom left under the arbitration limit."""
        return self.limit_bytes - self.committed_bytes

    def fits(self, request_bytes: int) -> bool:
        """Whether the node can take ``request_bytes`` more committed."""
        return request_bytes <= self.headroom_bytes


class PlacementPolicy:
    """Base class: rank candidates, pick one (or none)."""

    #: Registry name (e.g. ``"first-fit"``).
    name = "abstract"

    def select(
        self, request_bytes: int, candidates: Sequence[NodeCandidate]
    ) -> Optional[NodeCandidate]:
        """The node that takes the request, or ``None`` (reject).

        ``candidates`` arrive in (host, node) order; policies must be
        deterministic functions of their inputs.
        """
        raise NotImplementedError


class FirstFitPlacement(PlacementPolicy):
    """The lowest-numbered node with room."""

    name = "first-fit"

    def select(
        self, request_bytes: int, candidates: Sequence[NodeCandidate]
    ) -> Optional[NodeCandidate]:
        for candidate in candidates:
            if candidate.fits(request_bytes):
                return candidate
        return None


class BestFitPlacement(PlacementPolicy):
    """The fitting node with the least headroom (ties: lowest index)."""

    name = "best-fit"

    def select(
        self, request_bytes: int, candidates: Sequence[NodeCandidate]
    ) -> Optional[NodeCandidate]:
        fitting = [c for c in candidates if c.fits(request_bytes)]
        if not fitting:
            return None
        return min(
            fitting,
            key=lambda c: (c.headroom_bytes, c.host_index, c.node_id),
        )


class NumaSpreadPlacement(PlacementPolicy):
    """The fitting node with the fewest resident VMs (ties: most headroom,
    then lowest index)."""

    name = "numa-spread"

    def select(
        self, request_bytes: int, candidates: Sequence[NodeCandidate]
    ) -> Optional[NodeCandidate]:
        fitting = [c for c in candidates if c.fits(request_bytes)]
        if not fitting:
            return None
        return min(
            fitting,
            key=lambda c: (
                c.resident_vms,
                -c.headroom_bytes,
                c.host_index,
                c.node_id,
            ),
        )


#: name → policy factory.
PLACEMENT_POLICIES: Dict[str, Callable[[], PlacementPolicy]] = {
    FirstFitPlacement.name: FirstFitPlacement,
    BestFitPlacement.name: BestFitPlacement,
    NumaSpreadPlacement.name: NumaSpreadPlacement,
}


def get_placement_policy(name: str) -> PlacementPolicy:
    """Instantiate a registered placement policy by name."""
    try:
        return PLACEMENT_POLICIES[name]()
    except KeyError:
        raise ConfigError(
            f"unknown placement policy {name!r} "
            f"(have: {', '.join(sorted(PLACEMENT_POLICIES))})"
        ) from None
