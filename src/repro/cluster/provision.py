"""Fleet provisioning: the one place VMs are built.

Before the cluster layer existed, every experiment (and the test
fixtures) hand-assembled the same stack — ``Simulator`` + ``HostMachine``
+ ``VmConfig`` + ``HotMemBootParams`` + ``VirtualMachine`` + ``Agent`` —
with small copy-paste drift between the four copies.  The
:class:`Fleet` owns that wiring now:

1. a :class:`VmSpec` describes *what* VM is wanted (mode, geometry,
   seed, faults) without saying anything about *where* it lands;
2. the fleet's :class:`~repro.cluster.admission.DensityArbiter` decides
   whether the VM may be admitted at all, given the committed bytes of
   everything already resident;
3. the fleet's placement policy picks the (host, node) pair;
4. :meth:`Fleet.provision` builds the VM there, registers it for
   host-conservation checking, and hands back a :class:`VmHandle` that
   can later deploy an agent and shut the VM down (returning its
   committed bytes to the arbiter).

Admission failures are values (:class:`AdmissionResult` via
:meth:`Fleet.try_provision`) or a structured
:class:`~repro.errors.AdmissionRejected`, never a crash deep inside a
simulated process.  Provisioning performs no simulated work and draws no
randomness beyond the VM's own seeded streams, so refactoring an
experiment onto the fleet leaves its event trace byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.cluster.admission import (
    DEFAULT_ARBITRATION,
    AdmissionResult,
    ArbitrationPolicy,
    DensityArbiter,
)
from repro.cluster.failover import EvacuationResult
from repro.cluster.placement import PlacementPolicy, get_placement_policy
from repro.core.config import HotMemBootParams
from repro.errors import AdmissionRejected, ClusterError, ConfigError
from repro.faas.agent import Agent, FunctionDeployment
from repro.faas.policy import DeploymentMode, KeepAlivePolicy
from repro.faults.injector import FaultInjector, FaultPlan
from repro.faults.policy import ResiliencePolicy, RetryPolicy
from repro.host.machine import HostAccount, HostMachine, NumaNode
from repro.modes import DeploymentBackend, get_mode
from repro.obs.session import context_for
from repro.sim.costs import DEFAULT_COSTS, CostModel
from repro.sim.engine import Process, Simulator, Timeout
from repro.vmm.config import VmConfig, default_boot_memory_bytes
from repro.vmm.vm import VirtualMachine

__all__ = ["VmSpec", "VmHandle", "Fleet", "provision_vm"]


@dataclass(frozen=True)
class VmSpec:
    """Everything needed to build one VM, minus its location.

    Either give an explicit ``region_bytes`` (vanilla/overprovisioned
    style) or a HotMem partition geometry (``partition_bytes`` ×
    ``concurrency`` + ``shared_bytes``), which also sizes the region when
    ``region_bytes`` is omitted.
    """

    name: str
    mode: Union[str, DeploymentBackend] = DeploymentMode.VANILLA
    #: Explicit device-region size; ``None`` derives it from the
    #: partition geometry.
    region_bytes: Optional[int] = None
    partition_bytes: int = 0
    concurrency: int = 0
    shared_bytes: int = 0
    vcpus: int = 10
    boot_memory_bytes: Optional[int] = None
    placement: str = "scatter"
    virtio_irq_vcpu: int = 0
    batch_unplug: bool = False
    unplug_selection: str = "linear"
    seed: int = 0
    costs: CostModel = field(default=DEFAULT_COSTS)
    #: Optional fault plan; an injector is built per VM so sites stay
    #: independently seeded.
    faults: Optional[FaultPlan] = None
    fault_seed: Optional[int] = None
    retry: Optional[RetryPolicy] = None

    def __post_init__(self) -> None:
        # Accept registry names ("balloon") as well as backend objects.
        object.__setattr__(self, "mode", get_mode(self.mode))
        self.mode.validate_spec(self)
        if self.region_bytes is None and self.partition_bytes <= 0:
            raise ConfigError(
                f"{self.name}: give region_bytes or a partition geometry"
            )

    @classmethod
    def for_function(
        cls,
        name: str,
        mode: Union[str, DeploymentBackend],
        memory_limit_bytes: int,
        concurrency: int,
        shared_bytes: int = 0,
        **overrides,
    ) -> "VmSpec":
        """Size a spec from a function's memory limit (block-rounded)."""
        params = HotMemBootParams.for_function(
            memory_limit_bytes, concurrency, shared_bytes
        )
        return cls(
            name=name,
            mode=mode,
            partition_bytes=params.partition_bytes,
            concurrency=params.concurrency,
            shared_bytes=params.shared_bytes,
            **overrides,
        )

    # -- derived geometry ----------------------------------------------
    @property
    def hotplug_region_bytes(self) -> int:
        """Device-region size (explicit or geometry-derived), rounded to
        the mode's reclamation granularity (DIMM modes need whole
        slots; the originals round to nothing)."""
        if self.region_bytes is not None:
            return self.mode.round_region(self.region_bytes)
        derived = self.concurrency * self.partition_bytes + self.shared_bytes
        return self.mode.round_region(derived)

    @property
    def hotmem_params(self) -> Optional[HotMemBootParams]:
        """Boot params for HotMem-extension modes, ``None`` otherwise."""
        return self.mode.hotmem_params_for(self)

    @property
    def boot_bytes(self) -> int:
        """Boot memory after default sizing."""
        if self.boot_memory_bytes is not None:
            return self.boot_memory_bytes
        return default_boot_memory_bytes(self.hotplug_region_bytes)

    @property
    def max_bytes(self) -> int:
        """Peak host footprint: boot plus the whole device region."""
        return self.boot_bytes + self.hotplug_region_bytes

    def vm_config(self, node_id: int) -> VmConfig:
        """The :class:`VmConfig` for this spec pinned to ``node_id``."""
        return VmConfig(
            name=self.name,
            hotplug_region_bytes=self.hotplug_region_bytes,
            vcpus=self.vcpus,
            boot_memory_bytes=self.boot_memory_bytes,
            placement=self.placement,
            virtio_irq_vcpu=self.virtio_irq_vcpu,
            node_id=node_id,
            batch_unplug=self.batch_unplug,
        )


@dataclass
class VmHandle:
    """A provisioned VM plus where it lives and what it was charged."""

    spec: VmSpec
    vm: VirtualMachine
    host_index: int
    node_id: int
    admission: AdmissionResult
    fleet: "Fleet"
    agent: Optional[Agent] = None
    #: Deploy-time arguments, remembered so an evacuation can rebuild an
    #: equivalent agent on the replacement VM (see :meth:`Fleet.reprovision`).
    deployments: Optional[List[FunctionDeployment]] = None
    keep_alive: Optional[KeepAlivePolicy] = None
    resilience: Optional[ResiliencePolicy] = None

    @property
    def name(self) -> str:
        return self.spec.name

    def deploy(
        self,
        deployments: List[FunctionDeployment],
        policy: KeepAlivePolicy,
        resilience: Optional[ResiliencePolicy] = None,
    ) -> Agent:
        """Attach an :class:`~repro.faas.agent.Agent` to this VM."""
        if self.agent is not None:
            raise ClusterError(f"{self.name}: agent already deployed")
        self.agent = Agent(
            self.fleet.sim,
            self.vm,
            deployments,
            policy,
            self.spec.mode,
            resilience=resilience,
        )
        self.deployments = deployments
        self.keep_alive = policy
        self.resilience = resilience
        return self.agent

    def shutdown(self) -> None:
        """Stop the agent, release host memory and the admission charge."""
        if self.agent is not None:
            self.agent.stop()
        self.fleet._retire(self)

    def __repr__(self) -> str:
        return (
            f"<VmHandle {self.name} host={self.host_index} "
            f"node={self.node_id}>"
        )


class Fleet:
    """N hosts, a placement policy, and a density arbiter."""

    def __init__(
        self,
        sim: Simulator,
        hosts: int = 1,
        nodes_per_host: int = HostMachine.DEFAULT_NODES,
        cores_per_node: int = HostMachine.DEFAULT_CORES_PER_NODE,
        memory_per_node: int = HostMachine.DEFAULT_MEMORY_PER_NODE,
        placement: str = "first-fit",
        arbitration: ArbitrationPolicy = DEFAULT_ARBITRATION,
    ):
        if hosts <= 0:
            raise ConfigError(f"a fleet needs at least one host, got {hosts}")
        self.sim = sim
        self.hosts: List[HostMachine] = [
            HostMachine(
                sim,
                nodes=nodes_per_host,
                cores_per_node=cores_per_node,
                memory_per_node=memory_per_node,
            )
            for _ in range(hosts)
        ]
        self.placement: PlacementPolicy = (
            placement
            if isinstance(placement, PlacementPolicy)
            else get_placement_policy(placement)
        )
        self.arbiter = DensityArbiter(self.hosts, arbitration)
        #: The simulator's tracing context (inert unless a trace session
        #: is installed) and the fleet-wide scope admission/routing
        #: decisions are recorded through.
        self._obs_context = context_for(sim)
        self.obs = self._obs_context.scope()
        #: Every handle ever provisioned, in admission order.
        self.handles: List[VmHandle] = []
        self._names: Dict[str, VmHandle] = {}
        #: (time_ns, host_index, node_id) pressure-monitor firings.
        self.pressure_events: List[Tuple[int, int, int]] = []
        self._pressure_monitor: Optional[Process] = None
        #: Attached SLO burn-rate monitor (observation-only: pressure
        #: firings are attributed to its open windows).
        self.slo_monitor = None
        #: Hosts lost to a crash; mirrors the arbiter's down set.
        self.down_hosts: Set[int] = set()
        #: (host_index, node_id) → account for non-VM memory pressure
        #: (the ``host.pressure.spike`` fault charges through these, so
        #: host-conservation stays checkable during a spike).
        self._external: Dict[Tuple[int, int], HostAccount] = {}
        #: Bumped per evacuation so replacement VMs get fresh names.
        self._evac_generation = 0

    # ------------------------------------------------------------------
    # Admission + provisioning
    # ------------------------------------------------------------------
    def admit(self, spec: VmSpec) -> AdmissionResult:
        """Dry-run admission: where would this spec land, at what charge?"""
        committed = self.arbiter.commitment(
            spec.mode,
            spec.boot_bytes,
            spec.hotplug_region_bytes,
            spec.shared_bytes,
        )
        candidates = self.arbiter.candidates()
        choice = self.placement.select(committed, candidates)
        if choice is None:
            fits_empty = any(
                committed <= candidate.limit_bytes for candidate in candidates
            )
            result = AdmissionResult(
                admitted=False,
                reason="saturated" if fits_empty else "oversized",
                committed_bytes=committed,
            )
        else:
            result = AdmissionResult(
                admitted=True,
                host_index=choice.host_index,
                node_id=choice.node_id,
                committed_bytes=committed,
            )
        self.obs.event(
            "cluster.admit",
            vm=spec.name,
            mode=spec.mode.name,
            admitted=result.admitted,
            reason=result.reason,
            committed_bytes=result.committed_bytes,
        )
        self.obs.inc(
            "admissions_total",
            mode=spec.mode.name,
            admitted=result.admitted,
        )
        return result

    def try_provision(self, spec: VmSpec) -> Tuple[Optional[VmHandle], AdmissionResult]:
        """Provision if admission allows; always returns the decision."""
        if spec.name in self._names:
            raise ClusterError(f"VM name {spec.name!r} already provisioned")
        admission = self.admit(spec)
        if not admission.admitted:
            return None, admission
        vm_obs = self._obs_context.scope(
            vm=spec.name,
            mode=spec.mode.name,
            host=admission.host_index,
        )
        vm = VirtualMachine(
            self.sim,
            self.hosts[admission.host_index],
            spec.vm_config(admission.node_id),
            costs=spec.costs,
            hotmem_params=spec.hotmem_params,
            vanilla_unplug_selection=spec.unplug_selection,
            seed=spec.seed,
            faults=(
                FaultInjector(
                    spec.faults,
                    seed=spec.seed if spec.fault_seed is None else spec.fault_seed,
                )
                if spec.faults is not None
                else None
            ),
            retry_policy=spec.retry,
            obs=vm_obs,
        )
        # Stamp the mode on the resize log even when untraced, so
        # per-mode reports never see blank labels from fleet VMs.
        vm.tracer.mode = spec.mode.name
        self.arbiter.charge(
            admission.host_index, admission.node_id, admission.committed_bytes
        )
        # Swap in the mode's reclamation datapath and run its boot-time
        # preparation (overprovisioned/FPR plug everything, balloon
        # additionally inflates, the elastic virtio-mem modes do nothing).
        vm.datapath = spec.mode.build_datapath(vm)
        spec.mode.prepare_vm(vm)
        handle = VmHandle(
            spec=spec,
            vm=vm,
            host_index=admission.host_index,
            node_id=admission.node_id,
            admission=admission,
            fleet=self,
        )
        self.handles.append(handle)
        self._names[spec.name] = handle
        # Sanitizer/invariant discovery hook, mirroring _hotmem_context:
        # any checkpoint reached through this VM's manager can find the
        # fleet and run host-conservation across it.
        vm.manager._fleet_context = self
        return handle, admission

    def provision(self, spec: VmSpec) -> VmHandle:
        """Provision or raise :class:`~repro.errors.AdmissionRejected`."""
        handle, admission = self.try_provision(spec)
        if handle is None:
            raise AdmissionRejected(
                f"{spec.name}: admission rejected ({admission.reason})",
                result=admission,
            )
        return handle

    def _retire(self, handle: VmHandle) -> None:
        if not handle.vm._alive:
            return
        # Let the mode stop datapath machinery (e.g. the FPR reporting
        # loop) before the host account closes.
        handle.spec.mode.on_shutdown(handle.vm)
        handle.vm.shutdown()
        self.arbiter.release(
            handle.host_index, handle.node_id, handle.admission.committed_bytes
        )

    # ------------------------------------------------------------------
    # Failure domains (see repro.cluster.failover)
    # ------------------------------------------------------------------
    def residents(self, host_index: int) -> List[VmHandle]:
        """Alive handles resident on one host, in admission order."""
        return [
            h
            for h in self.handles
            if h.host_index == host_index and h.vm._alive
        ]

    def _kill_handle(self, handle: VmHandle) -> None:
        # Kill order matters: the agent's background processes first
        # (they reference containers backed by the VM's memory), then
        # the VM's in-flight plug/unplug work and its host account.
        # Router-side in-flight requests are the coordinator's job and
        # were already failed over before we get here.
        if handle.agent is not None:
            handle.agent.kill()
        handle.vm.kill()

    def kill_vm(self, name: str) -> VmHandle:
        """Abruptly kill one VM (OOM-kill): no graceful shutdown.

        Unlike :meth:`VmHandle.shutdown` nothing drains; in-flight
        simulated work is terminated and the admission charge is
        returned exactly.  The handle stays in ``handles`` (dead) so
        history and naming are preserved.
        """
        handle = self.handle(name)
        if not handle.vm._alive:
            return handle
        self._kill_handle(handle)
        self.arbiter.release(
            handle.host_index, handle.node_id, handle.admission.committed_bytes
        )
        self.obs.event("cluster.vm-killed", vm=name, host=handle.host_index)
        return handle

    def crash_host(self, host_index: int) -> List[VmHandle]:
        """Take a whole host down, atomically from the sim's viewpoint.

        Kills every resident VM, removes the host from arbitration and
        rebuilds the committed-memory ledger from the survivors — all in
        one callback (no yields), so sanitizer probes never observe a
        half-crashed ledger.  Returns the victims for evacuation.
        """
        if host_index in self.down_hosts:
            return []
        victims = self.residents(host_index)
        for handle in victims:
            self._kill_handle(handle)
        self.down_hosts.add(host_index)
        self.arbiter.mark_host_down(host_index)
        self.arbiter.reconcile(self._resident_commitments())
        self.obs.event(
            "cluster.host-crash",
            host=host_index,
            victims=len(victims),
        )
        return victims

    def _resident_commitments(self) -> List[Tuple[int, int, int]]:
        """Ground truth for the arbiter: one triple per alive VM."""
        return [
            (h.host_index, h.node_id, h.admission.committed_bytes)
            for h in self.handles
            if h.vm._alive
        ]

    def ledger_drift_report(self) -> Dict[Tuple[int, int], int]:
        """Per-node arbiter drift vs. the alive handles (empty = exact)."""
        return self.arbiter.drift_report(self._resident_commitments())

    def ledger_drift_bytes(self) -> int:
        """Total absolute arbiter drift vs. the alive handles."""
        return sum(abs(delta) for delta in self.ledger_drift_report().values())

    def reprovision(
        self, dead: VmHandle
    ) -> Tuple[Optional[VmHandle], AdmissionResult]:
        """Re-admit a killed VM's spec on a surviving host.

        The replacement runs the same spec under a generation-suffixed
        name (``web~e1``), goes through normal placement/admission (it
        can be rejected — evacuation does not override density limits),
        and gets an equivalent agent re-deployed from the dead handle's
        remembered deploy arguments, including a restarted recycler.
        """
        if dead.vm._alive:
            raise ClusterError(f"{dead.name}: cannot reprovision a live VM")
        self._evac_generation += 1
        base = dead.spec.name.split("~", 1)[0]
        spec = replace(dead.spec, name=f"{base}~e{self._evac_generation}")
        handle, admission = self.try_provision(spec)
        if handle is None:
            return None, admission
        if dead.deployments is not None and dead.keep_alive is not None:
            handle.deploy(
                dead.deployments, dead.keep_alive, resilience=dead.resilience
            )
        if (
            handle.agent is not None
            and dead.agent is not None
            and dead.agent._recycler is not None
        ):
            handle.agent.start_recycler(dead.agent._recycler_until)
        return handle, admission

    def evacuate(
        self,
        host_index: int,
        victims: List[VmHandle],
        coldstart_ns: int,
        on_replacement=None,
    ):
        """Process generator: re-home a crashed host's VMs, one by one.

        Each victim pays ``coldstart_ns`` (boot + image pull on its new
        host), then goes through :meth:`reprovision` — normal placement
        and admission, which may *reject* it when the survivors lack
        density headroom.  ``on_replacement(dead, replacement)`` fires
        per successful re-admission (the coordinator uses it to register
        the replacement with the router and stamp recovery records).
        Returns an :class:`~repro.cluster.failover.EvacuationResult`.
        """
        if coldstart_ns < 0:
            raise ConfigError(f"coldstart_ns must be >= 0, got {coldstart_ns}")
        evacuated: List[str] = []
        rejected: List[str] = []
        for dead in victims:
            if coldstart_ns > 0:
                yield Timeout(coldstart_ns)
            replacement, _admission = self.reprovision(dead)
            if replacement is None:
                rejected.append(dead.name)
                continue
            evacuated.append(replacement.name)
            if on_replacement is not None:
                on_replacement(dead, replacement)
        return EvacuationResult(
            host_index=host_index,
            evacuated=tuple(evacuated),
            rejected=tuple(rejected),
            completed_ns=self.sim.now,
        )

    def external_charge(self, host_index: int, node_id: int, nbytes: int) -> int:
        """Charge non-VM memory against a node (pressure spike).

        Clamped to the node's free bytes so the spike squeezes the node
        hard without tripping :class:`~repro.errors.OutOfMemory`; the
        granted amount is returned for the matching release.
        """
        if nbytes < 0:
            raise ConfigError(f"external charge must be >= 0, got {nbytes}")
        node = self.hosts[host_index].node(node_id)
        granted = min(nbytes, node.free_bytes)
        if granted <= 0:
            return 0
        account = self._external.get((host_index, node_id))
        if account is None:
            account = HostAccount(node)
            self._external[(host_index, node_id)] = account
        account.charge(granted)
        return granted

    def external_release(self, host_index: int, node_id: int, nbytes: int) -> None:
        """Return previously granted external bytes to the node."""
        if nbytes <= 0:
            return
        account = self._external[(host_index, node_id)]
        account.discharge(nbytes)

    def external_bytes(self, host_index: int, node_id: int) -> int:
        """External (non-VM) bytes currently charged against a node."""
        account = self._external.get((host_index, node_id))
        return account.charged_bytes if account is not None else 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def handle(self, name: str) -> VmHandle:
        """The handle provisioned under ``name``."""
        try:
            return self._names[name]
        except KeyError:
            raise ClusterError(f"no VM named {name!r} in the fleet") from None

    def node_views(
        self,
    ) -> Iterator[Tuple[int, NumaNode, List[VirtualMachine]]]:
        """Yield (host_index, node, alive resident VMs) per node."""
        for host_index, host in enumerate(self.hosts):
            for node in host.nodes:
                residents = [
                    h.vm
                    for h in self.handles
                    if h.host_index == host_index
                    and h.node_id == node.node_id
                    and h.vm._alive
                ]
                yield host_index, node, residents

    def agents(self) -> List[Agent]:
        """Deployed agents over alive VMs, in admission order."""
        return [
            h.agent for h in self.handles if h.agent is not None and h.vm._alive
        ]

    # ------------------------------------------------------------------
    # Reclamation pressure
    # ------------------------------------------------------------------
    def attach_slo_monitor(self, monitor) -> None:
        """Feed pressure firings into an SLO monitor's burn windows.

        Observation-only: attaching a monitor never changes what the
        pressure loop sheds, so golden outputs are unaffected."""
        self.slo_monitor = monitor

    def start_pressure_monitor(
        self, period_ns: int, until_ns: Optional[int] = None
    ) -> Process:
        """Watch real node usage; over the watermark, ask resident
        agents to run an immediate reclamation pass."""
        if self._pressure_monitor is not None:
            raise ClusterError("pressure monitor already started")
        if period_ns <= 0:
            raise ConfigError("pressure period must be positive")
        self._pressure_monitor = self.sim.spawn(
            self._pressure_loop(period_ns, until_ns), name="fleet-pressure"
        )
        return self._pressure_monitor

    def _pressure_loop(self, period_ns: int, until_ns: Optional[int]):
        bounded = self.arbiter.policy.pressure_shed == "bounded"
        while True:
            yield Timeout(period_ns)
            if until_ns is not None and self.sim.now > until_ns:
                return None
            for host_index, node, residents in self.node_views():
                if not residents:
                    continue
                if not self.arbiter.over_watermark(host_index, node.node_id):
                    continue
                self.pressure_events.append(  # lint: allow[no-unbounded-series] bounded by horizon/period; consumed whole by chaos gates
                    (self.sim.now, host_index, node.node_id)
                )
                if self.slo_monitor is not None:
                    self.slo_monitor.note_pressure(
                        self.sim.now, host_index, node.node_id
                    )
                # Under bounded shedding every resident agent gets the
                # node's overage as its budget: each agent's eviction
                # policy ranks its own idle containers and only the
                # prefix covering the overage dies.  ``None`` keeps the
                # historical evict-everything nudge.
                need_bytes = (
                    self.arbiter.overage_bytes(host_index, node.node_id)
                    if bounded
                    else None
                )
                for handle in self.handles:
                    if (
                        handle.host_index == host_index
                        and handle.node_id == node.node_id
                        and handle.agent is not None
                        and handle.vm._alive
                    ):
                        handle.agent.request_reclaim(need_bytes=need_bytes)

    def __repr__(self) -> str:
        return f"<Fleet hosts={len(self.hosts)} vms={len(self.handles)}>"


def provision_vm(sim: Simulator, spec: VmSpec, **fleet_kwargs) -> VmHandle:
    """One-host convenience: build a single-host fleet and provision.

    The returned handle's ``fleet`` gives access to the host
    (``handle.fleet.hosts[0]``) for callers that only need one machine.
    """
    fleet = Fleet(sim, hosts=1, **fleet_kwargs)
    return fleet.provision(spec)
