"""Density-aware admission: how many VMs a host safely takes.

The whole point of HotMem (Section 2's stranding argument) is that a
host running elastic VMs can be packed denser than its installed memory
would naively allow, because idle function partitions are unplugged and
returned.  The :class:`DensityArbiter` turns that into an admission
decision by charging each VM a *committed* footprint that discounts the
memory the deployment mode is expected to give back:

``committed = boot + region − credit(mode) × (region − shared)``

Each registered deployment mode declares its own credit
(:attr:`~repro.modes.base.DeploymentBackend.reclaim_credit`):

* **overprovisioned** VMs plug the whole region at boot and never return
  it — credit 0, committed equals the full footprint.
* **vanilla** virtio-mem VMs do resize, but reclamation is slow and
  migration-limited, so only a conservative slice of the region is
  credited back.
* **hotmem** VMs recycle partitions in milliseconds, so most of the
  elastic region (everything but the always-resident shared partition)
  is credited as reclaimable.
* the related-work baselines carry credits matched to their reclamation
  semantics (see :mod:`repro.modes.related`).

The policy can still pin a credit per mode name
(``ArbitrationPolicy(hotmem_credit=...)``), which overrides whatever the
mode declares — the density experiment's sensitivity sweeps use this.

Committed bytes are an admission-time promise, distinct from *plugged*
bytes (what the VM actually backs right now, tracked by
:class:`~repro.host.machine.HostAccount`).  The gap between the two is
the oversubscription bet; the fleet's pressure monitor watches real node
usage against :attr:`ArbitrationPolicy.pressure_watermark` and nudges
agents' recyclers when the bet starts to come due.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.cluster.placement import NodeCandidate
from repro.errors import ConfigError
from repro.host.machine import HostMachine
from repro.modes import DeploymentBackend, get_mode
from repro.units import format_bytes

__all__ = [
    "ArbitrationPolicy",
    "DEFAULT_ARBITRATION",
    "AdmissionResult",
    "DensityArbiter",
]


@dataclass(frozen=True)
class ArbitrationPolicy:
    """Knobs for committed-memory admission."""

    #: Fraction of each node's installed memory admittable as committed.
    limit_fraction: float = 1.0
    #: Per-mode-name credit overrides (fraction of the elastic region,
    #: i.e. the hotplug region minus shared bytes).  ``None`` defers to
    #: the mode's declared :attr:`~repro.modes.base
    #: .DeploymentBackend.reclaim_credit`, which matches the historical
    #: defaults (0 / 0.25 / 0.75) for the three original modes.
    overprovisioned_credit: Optional[float] = None
    vanilla_credit: Optional[float] = None
    hotmem_credit: Optional[float] = None
    #: Real node usage fraction above which the fleet applies
    #: reclamation pressure to resident agents.
    pressure_watermark: float = 0.9
    #: How much a pressured node sheds: ``"all"`` (historical — every
    #: resident agent evicts everything idle) or ``"bounded"`` (each
    #: agent's eviction policy ranks its idle containers and only the
    #: prefix covering the node's watermark overage dies, so warm
    #: capacity survives pressure in policy order).
    pressure_shed: str = "all"

    def __post_init__(self) -> None:
        if self.pressure_shed not in ("all", "bounded"):
            raise ConfigError(
                f"pressure_shed must be 'all' or 'bounded', "
                f"got {self.pressure_shed!r}"
            )
        for name in (
            "limit_fraction",
            "overprovisioned_credit",
            "vanilla_credit",
            "hotmem_credit",
            "pressure_watermark",
        ):
            value = getattr(self, name)
            if value is not None and not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")

    def credit_for(self, mode: Union[str, DeploymentBackend]) -> float:
        """The reclaimable-region credit for a deployment mode.

        Looks for a ``<mode name>_credit`` override on the policy first,
        then falls back to what the mode itself declares — so modes the
        policy has never heard of (balloon, dimm, fpr, any custom
        registration) get sensible credits without new policy fields.
        """
        mode = get_mode(mode)
        override = getattr(self, f"{mode.name}_credit", None)
        if override is not None:
            return override
        return mode.reclaim_credit


#: Inert default used by :class:`~repro.cluster.provision.Fleet`.
DEFAULT_ARBITRATION = ArbitrationPolicy()


@dataclass(frozen=True)
class AdmissionResult:
    """Outcome of one admission attempt — a value, never an exception."""

    admitted: bool
    #: ``""`` on success, else ``"saturated"`` (no node has headroom)
    #: or ``"oversized"`` (the VM cannot fit even on an empty node).
    reason: str = ""
    host_index: int = -1
    node_id: int = -1
    #: Committed bytes this VM was (or would have been) charged.
    committed_bytes: int = 0


class DensityArbiter:
    """Per-node committed-memory ledger for a fleet of hosts."""

    def __init__(self, hosts: Sequence[HostMachine], policy: ArbitrationPolicy):
        self.hosts = list(hosts)
        self.policy = policy
        #: (host_index, node_id) → committed bytes admitted.
        self._committed: Dict[Tuple[int, int], int] = {}
        #: (host_index, node_id) → resident VM count.
        self._resident: Dict[Tuple[int, int], int] = {}
        #: Hosts removed from arbitration after a crash (their nodes are
        #: never admission candidates again).
        self._down: set = set()
        for host_index, host in enumerate(self.hosts):
            for node in host.nodes:
                self._committed[(host_index, node.node_id)] = 0
                self._resident[(host_index, node.node_id)] = 0

    # ------------------------------------------------------------------
    # Commitment math
    # ------------------------------------------------------------------
    def commitment(
        self,
        mode: Union[str, DeploymentBackend],
        boot_bytes: int,
        region_bytes: int,
        shared_bytes: int = 0,
    ) -> int:
        """Committed bytes one VM is charged at admission."""
        elastic = max(0, region_bytes - shared_bytes)
        credit = self.policy.credit_for(mode)
        return boot_bytes + region_bytes - int(credit * elastic)

    def limit_bytes(self, host_index: int, node_id: int) -> int:
        """Admission ceiling for one node."""
        node = self.hosts[host_index].node(node_id)
        return int(node.memory_bytes * self.policy.limit_fraction)

    def committed_bytes(self, host_index: int, node_id: int) -> int:
        """Committed bytes currently admitted against one node."""
        return self._committed[(host_index, node_id)]

    def candidates(self) -> List[NodeCandidate]:
        """Arbitration views of every *up* node, in (host, node) order."""
        views: List[NodeCandidate] = []
        for host_index, host in enumerate(self.hosts):
            if host_index in self._down:
                continue
            for node in host.nodes:
                key = (host_index, node.node_id)
                views.append(
                    NodeCandidate(
                        host_index=host_index,
                        node_id=node.node_id,
                        limit_bytes=self.limit_bytes(host_index, node.node_id),
                        committed_bytes=self._committed[key],
                        resident_vms=self._resident[key],
                    )
                )
        return views

    # ------------------------------------------------------------------
    # Ledger updates (the fleet calls these, experiments never do)
    # ------------------------------------------------------------------
    def charge(self, host_index: int, node_id: int, committed: int) -> None:
        """Record an admitted VM's committed bytes on its node."""
        if host_index in self._down:
            raise ConfigError(
                f"cannot charge host {host_index}: it is down"
            )
        key = (host_index, node_id)
        after = self._committed[key] + committed
        if after > self.limit_bytes(host_index, node_id):
            raise ConfigError(
                f"arbitration ledger overcommit on host {host_index} node "
                f"{node_id}: {format_bytes(after)} > limit"
            )
        self._committed[key] = after
        self._resident[key] += 1

    def release(self, host_index: int, node_id: int, committed: int) -> None:
        """Return an admitted VM's committed bytes (shutdown)."""
        key = (host_index, node_id)
        if committed > self._committed[key] or self._resident[key] <= 0:
            raise ConfigError(
                f"arbitration ledger underflow on host {host_index} node {node_id}"
            )
        self._committed[key] -= committed
        self._resident[key] -= 1

    # ------------------------------------------------------------------
    # Failure domains (see repro.cluster.failover)
    # ------------------------------------------------------------------
    def mark_host_down(self, host_index: int) -> None:
        """Remove a crashed host from arbitration (idempotent).

        Its nodes stop appearing in :meth:`candidates` and refuse new
        charges; the ledger rows themselves are repaired by
        :meth:`reconcile`.
        """
        if not 0 <= host_index < len(self.hosts):
            raise ConfigError(f"no host {host_index} in the fleet")
        self._down.add(host_index)

    def host_is_down(self, host_index: int) -> bool:
        """Whether a host has been marked down."""
        return host_index in self._down

    def drift_report(
        self, residents: Iterable[Tuple[int, int, int]]
    ) -> Dict[Tuple[int, int], int]:
        """Per-node ledger drift against the ground truth, read-only.

        ``residents`` is ``(host_index, node_id, committed_bytes)`` for
        every VM that is actually alive; the report maps each node key
        to ``ledger − truth`` (only nonzero entries).  The
        ``ledger-conservation`` invariant gates on this being empty.
        """
        truth: Dict[Tuple[int, int], int] = {
            key: 0 for key in self._committed
        }
        for host_index, node_id, committed in residents:
            truth[(host_index, node_id)] += committed
        return {
            key: self._committed[key] - truth[key]
            for key in self._committed
            if self._committed[key] != truth[key]
        }

    def reconcile(
        self, residents: Iterable[Tuple[int, int, int]]
    ) -> int:
        """Rebuild the ledger from the VMs that actually survive.

        After a host crash the crashed VMs' charges are still on the
        books; rather than trusting incremental release arithmetic
        through a fault storm, the ledger is rebuilt from scratch from
        ``residents`` (``(host_index, node_id, committed_bytes)`` per
        surviving VM).  Returns the total absolute drift repaired in
        bytes — zero when the incremental ledger was already exact.
        """
        residents = list(residents)
        report = self.drift_report(residents)
        drift = sum(abs(delta) for delta in report.values())
        committed: Dict[Tuple[int, int], int] = {
            key: 0 for key in self._committed
        }
        count: Dict[Tuple[int, int], int] = {key: 0 for key in self._resident}
        for host_index, node_id, charge in residents:
            committed[(host_index, node_id)] += charge
            count[(host_index, node_id)] += 1
        self._committed = committed
        self._resident = count
        return drift

    # ------------------------------------------------------------------
    # Pressure
    # ------------------------------------------------------------------
    def over_watermark(self, host_index: int, node_id: int) -> bool:
        """Whether *real* node usage exceeds the pressure watermark."""
        node = self.hosts[host_index].node(node_id)
        return node.used_bytes > self.policy.pressure_watermark * node.memory_bytes

    def overage_bytes(self, host_index: int, node_id: int) -> int:
        """How far *real* node usage sits above the pressure watermark.

        The bounded pressure-shed budget: the fleet hands this to each
        resident agent's :meth:`~repro.faas.agent.Agent.request_reclaim`
        so the eviction policy only kills the ranked prefix of idle
        containers covering the overage (0 when under the watermark).
        """
        node = self.hosts[host_index].node(node_id)
        watermark = int(self.policy.pressure_watermark * node.memory_bytes)
        return max(0, node.used_bytes - watermark)

    def __repr__(self) -> str:
        total = sum(self._committed.values())
        return (
            f"<DensityArbiter hosts={len(self.hosts)} "
            f"committed={format_bytes(total)}>"
        )
