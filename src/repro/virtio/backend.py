"""Hotplug backends: what the guest does with (un)plugged blocks.

The virtio-mem driver mechanics (request handling, block bookkeeping,
CPU charging) are shared between vanilla Linux and HotMem; what differs
is *policy*:

* where freshly plugged blocks are onlined (``ZONE_MOVABLE`` vs. an empty
  HotMem partition),
* which blocks are chosen to satisfy an unplug request (linear scan with
  migrations vs. the blocks of guaranteed-empty partitions),
* whether page zeroing can be skipped because the host provides zeroed
  memory (HotMem's plug/unplug optimization, Section 4).

:class:`VanillaBackend` implements stock virtio-mem behaviour; the HotMem
backend lives in :mod:`repro.core.backend` (it is the paper's
contribution).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.mm.block import MemoryBlock
from repro.mm.manager import GuestMemoryManager
from repro.mm.zone import Zone
from repro.sim.costs import CostModel, ZeroingMode
from repro.units import PAGES_PER_BLOCK

__all__ = ["HotplugBackend", "VanillaBackend", "UnplugPlanEntry"]


class UnplugPlanEntry:
    """One block the backend decided to offline, plus expected work."""

    __slots__ = ("block", "scanned_blocks")

    def __init__(self, block: MemoryBlock, scanned_blocks: int = 0):
        self.block = block
        #: Candidate blocks the selection examined before settling on this
        #: one (charged as scan cost by the driver).
        self.scanned_blocks = scanned_blocks


class HotplugBackend:
    """Policy interface the virtio-mem driver delegates to."""

    #: Human-readable backend name (shows up in reports).
    name = "abstract"

    def zones_for_plug(self, n_blocks: int) -> List[Tuple[Zone, int]]:
        """Distribute ``n_blocks`` freshly plugged blocks over zones."""
        raise NotImplementedError

    def plan_unplug(self, n_blocks: int) -> List[UnplugPlanEntry]:
        """Choose up to ``n_blocks`` online blocks to offline and remove.

        May return fewer entries than requested when not enough memory can
        be offlined (the driver reports a partial unplug, as virtio-mem
        does).
        """
        raise NotImplementedError

    def plug_zero_pages_per_block(self) -> int:
        """Pages the guest must zero while onlining one plugged block."""
        raise NotImplementedError

    def unplug_zero_pages(self, migrated_pages: int) -> int:
        """Pages zeroed by the offline path given ``migrated_pages`` moved."""
        raise NotImplementedError

    def migrate_for_unplug(self, block: MemoryBlock) -> int:
        """Empty ``block`` (migrating occupants); returns pages migrated."""
        raise NotImplementedError

    def on_block_plugged(self, block: MemoryBlock) -> None:
        """Hook after a block is onlined (HotMem populates partitions)."""

    def on_block_unplugged(self, block: MemoryBlock) -> None:
        """Hook after a block is removed (HotMem empties partitions)."""

    def on_block_quarantined(self, block: MemoryBlock) -> None:
        """Hook after the driver quarantines a repeatedly failing block.

        HotMem quarantines the owning partition alongside so the
        recycler stops proposing it (see :mod:`repro.core.backend`);
        vanilla needs nothing — the block is isolated, which already
        removes it from :meth:`plan_unplug` candidacy.
        """


class VanillaBackend(HotplugBackend):
    """Stock virtio-mem on stock Linux.

    Plugged blocks are onlined into ``ZONE_MOVABLE``; unplug linearly
    scans the zone's blocks (highest physical address first, matching
    virtio-mem's preference for unplugging the most recently plugged
    ranges) and migrates occupied pages out of each chosen block.

    ``selection`` may be set to ``"emptiest_first"`` for the A3 ablation
    (an idealized scan that offlines the cheapest blocks first).
    """

    name = "vanilla"

    def __init__(
        self,
        manager: GuestMemoryManager,
        costs: CostModel,
        selection: str = "linear",
    ):
        if selection not in ("linear", "emptiest_first"):
            raise ValueError(f"unknown selection policy {selection!r}")
        self.manager = manager
        self.costs = costs
        self.selection = selection

    # -- plug -----------------------------------------------------------
    def zones_for_plug(self, n_blocks: int) -> List[Tuple[Zone, int]]:
        return [(self.manager.zone_movable, n_blocks)]

    def plug_zero_pages_per_block(self) -> int:
        # Under init_on_free pages must be zeroed before onlining exposes
        # them; vanilla has no way to know the host pre-zeroed them.
        if self.costs.zeroing_mode == ZeroingMode.INIT_ON_FREE:
            return PAGES_PER_BLOCK
        return 0

    # -- unplug ----------------------------------------------------------
    def plan_unplug(self, n_blocks: int) -> List[UnplugPlanEntry]:
        zone = self.manager.zone_movable
        candidates = sorted(
            (b for b in zone.blocks if not b.isolated),
            key=lambda b: b.index,
            reverse=True,
        )
        if self.selection == "emptiest_first":
            candidates.sort(key=lambda b: (b.occupied_pages, -b.index))
        plan: List[UnplugPlanEntry] = []
        chosen: set = set()
        scanned = 0
        # Walk candidates, keeping a running headroom estimate: pages
        # migrated out of chosen blocks consume free space elsewhere.
        headroom = zone.free_pages + self.manager.zone_normal.free_pages
        for block in candidates:
            if len(plan) == n_blocks:
                break
            scanned += 1
            cost = block.occupied_pages
            # Choosing this block removes its free pages from the headroom
            # and consumes space for its migrated occupants.
            new_headroom = headroom - block.free_pages - cost
            if new_headroom < 0 or block.has_unmovable:
                continue
            headroom = new_headroom
            chosen.add(block)
            plan.append(UnplugPlanEntry(block, scanned_blocks=scanned))
            scanned = 0
        return plan

    def migrate_for_unplug(self, block: MemoryBlock) -> int:
        outcome = self.manager.migrate_block_out(block)
        return outcome.migrated_pages

    def unplug_zero_pages(self, migrated_pages: int) -> int:
        # The offline path reserves migration targets through the generic
        # allocation routines; under init_on_alloc those pages get zeroed.
        if self.costs.zeroing_mode == ZeroingMode.INIT_ON_ALLOC:
            return migrated_pages
        return 0
