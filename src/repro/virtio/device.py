"""The VMM-side virtio-mem device.

Models the Cloud Hypervisor implementation the paper uses (Section 5.2):
a paravirtualized DIMM chunked into 128 MiB blocks that can be plugged
and unplugged independently.  The device

* owns the hotpluggable region (which guest-physical blocks are plugged),
* charges/discharges host memory for plugged blocks,
* forwards requests to the guest driver over a notification round trip,
* ``madvise(MADV_DONTNEED)``-releases unplugged blocks back to the host
  on its own VMM thread (pinned to a host core, Section 5.4),
* and timestamps every request for the hypervisor-side unplug-latency
  metric (Section 5.4: request received → memory marked DONTNEED).

Requests are serialized, as in virtio-mem: one resize at a time.

Fault injection (see ``docs/faults.md``): the device hosts three named
sites — a plug NACK (host refuses the whole request), a partial plug
(host grants only half the blocks), and a stalled response (extra
latency on the notification round trip).  NACK and partial outcomes
travel to the caller via :attr:`PlugResult.error` — **never** as an
exception, since an exception would abort the simulated process tree —
and the agent decides whether to retry or degrade.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, List, Optional, Set

from repro.errors import HotplugError
from repro.faults.injector import NO_FAULTS, FaultInjector, InjectedFault
from repro.faults.sites import (
    DEVICE_PLUG_NACK,
    DEVICE_PLUG_PARTIAL,
    DEVICE_RESPONSE_DELAY,
)
from repro.host.machine import NumaNode
from repro.faults.recovery import RecoveryLog
from repro.mm.block import BlockState
from repro.mm.manager import GuestMemoryManager
from repro.obs.context import NO_SCOPE, ObsScope
from repro.obs.span import NULL_SPAN, SpanLike
from repro.sim.costs import CostModel
from repro.sim.cpu import CpuCore
from repro.sim.engine import Event, Simulator, Timeout
from repro.units import MEMORY_BLOCK_SIZE, bytes_to_blocks, format_bytes
from repro.virtio.driver import VirtioMemDriver

if TYPE_CHECKING:  # pragma: no cover - avoids a package-level import cycle
    from repro.vmm.tracing import HypervisorTracer

__all__ = ["VirtioMemDevice", "PlugResult", "UnplugResult"]

#: Accounting label for VMM-side device work (madvise etc.).
VMM_LABEL = "vmm:virtio-mem"


@dataclass
class PlugResult:
    """Hypervisor-side view of one completed plug request."""

    requested_bytes: int
    plugged_bytes: int
    latency_ns: int
    zeroed_pages: int
    #: ``""`` on success; ``"nack"`` when the host refused the request,
    #: ``"partial"`` when an injected fault granted fewer blocks than
    #: asked, ``"host-oom"`` when the host node had no free blocks at
    #: all, ``"host-partial"`` when it could only back part of the
    #: request (oversubscribed fleets hit the last two naturally).
    error: str = ""
    #: The injected fault behind a non-empty ``error`` (the caller
    #: resolves it with the recovery path it chose).
    fault: Optional[InjectedFault] = field(default=None, repr=False)

    @property
    def fully_plugged(self) -> bool:
        return self.plugged_bytes == self.requested_bytes


@dataclass
class UnplugResult:
    """Hypervisor-side view of one completed unplug request."""

    requested_bytes: int
    unplugged_bytes: int
    latency_ns: int
    migrated_pages: int
    scanned_blocks: int

    @property
    def fully_unplugged(self) -> bool:
        return self.unplugged_bytes == self.requested_bytes


class VirtioMemDevice:
    """One VM's paravirtualized hot(un)plug device."""

    def __init__(
        self,
        sim: Simulator,
        driver: VirtioMemDriver,
        manager: GuestMemoryManager,
        costs: CostModel,
        vmm_core: CpuCore,
        host_node: NumaNode,
        tracer: "HypervisorTracer",
        faults: FaultInjector = NO_FAULTS,
        recovery: Optional[RecoveryLog] = None,
        obs: ObsScope = NO_SCOPE,
    ):
        self.sim = sim
        self.driver = driver
        self.manager = manager
        self.costs = costs
        self.vmm_core = vmm_core
        self.host_node = host_node
        self.tracer = tracer
        self.faults = faults
        self.recovery = recovery
        self.obs = obs
        # When tracing, resize events flow through the span consumer
        # (HypervisorTracer.consume_span) instead of direct record_*
        # calls — same instants, same values, no double recording.
        self._traced = obs.enabled
        self.plugged_indices: Set[int] = set()
        self._busy = False
        self._waiters: Deque[Event] = deque()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def region_blocks(self) -> int:
        """Total blocks in the hotpluggable device region."""
        return self.manager.hotplug_blocks

    @property
    def plugged_bytes(self) -> int:
        """Memory currently plugged through this device."""
        return len(self.plugged_indices) * MEMORY_BLOCK_SIZE

    # ------------------------------------------------------------------
    # Request serialization
    # ------------------------------------------------------------------
    def _acquire(self):
        if self._busy:
            gate = self.sim.event()
            self._waiters.append(gate)
            yield gate
        self._busy = True
        return None

    def _release(self) -> None:
        self._busy = False
        if self._waiters:
            self._waiters.popleft().trigger(None)

    # ------------------------------------------------------------------
    # Plug
    # ------------------------------------------------------------------
    def plug(self, size_bytes: int, parent: SpanLike = NULL_SPAN):
        """Process generator: plug ``size_bytes`` (rounded up to blocks).

        Returns a :class:`PlugResult`.  Raises :class:`HotplugError` when
        the request exceeds the device region.
        """
        n_blocks = bytes_to_blocks(size_bytes)
        yield from self._acquire()
        try:
            free_indices = [
                i
                for i in self.manager.hotplug_block_indices()
                if i not in self.plugged_indices
            ]
            if n_blocks > len(free_indices):
                raise HotplugError(
                    f"plug of {format_bytes(size_bytes)} exceeds device region "
                    f"({len(free_indices)} free blocks)"
                )
            start = self.sim.now
            span = self.obs.span(
                "device.plug",
                parent=parent,
                requested_bytes=n_blocks * MEMORY_BLOCK_SIZE,
            )
            nack = self.faults.fire(
                DEVICE_PLUG_NACK, parent=span, requested_blocks=n_blocks
            )
            if nack is not None:
                # Host refuses the whole request; the round trip still
                # costs a notification and no host memory is charged.
                device_phase = self.obs.span("phase.device", parent=span)
                yield self.vmm_core.submit(
                    self.costs.virtio_request_rtt_ns, VMM_LABEL
                )
                device_phase.close()
                end = self.sim.now
                self._trace_plug(
                    span, start, end, n_blocks * MEMORY_BLOCK_SIZE, 0, "nack"
                )
                return PlugResult(
                    requested_bytes=n_blocks * MEMORY_BLOCK_SIZE,
                    plugged_bytes=0,
                    latency_ns=end - start,
                    zeroed_pages=0,
                    error="nack",
                    fault=nack,
                )
            effective = n_blocks
            partial = None
            if n_blocks > 1:
                partial = self.faults.fire(
                    DEVICE_PLUG_PARTIAL, parent=span, requested_blocks=n_blocks
                )
                if partial is not None:
                    effective = max(1, n_blocks // 2)
            # Host exhaustion is a structured outcome, not an exception:
            # an oversubscribed node grants what it can back (possibly
            # nothing) and the agent's retry/degrade machinery takes over.
            host_free_blocks = self.host_node.free_bytes // MEMORY_BLOCK_SIZE
            host_short = effective > host_free_blocks
            if host_short:
                effective = host_free_blocks
            if effective == 0:
                device_phase = self.obs.span("phase.device", parent=span)
                yield self.vmm_core.submit(
                    self.costs.virtio_request_rtt_ns, VMM_LABEL
                )
                device_phase.close()
                end = self.sim.now
                self._trace_plug(
                    span, start, end, n_blocks * MEMORY_BLOCK_SIZE, 0, "host-oom"
                )
                return PlugResult(
                    requested_bytes=n_blocks * MEMORY_BLOCK_SIZE,
                    plugged_bytes=0,
                    latency_ns=end - start,
                    zeroed_pages=0,
                    error="host-oom",
                    fault=partial,
                )
            chosen = free_indices[:effective]
            # Host backing is charged up front (the hypervisor hands the
            # guest zeroed pages).  ``plugged_indices`` is only updated on
            # completion so that observers see committed state (requests
            # are serialized, so the chosen indices cannot be stolen).
            self.host_node.charge(effective * MEMORY_BLOCK_SIZE)
            device_phase = self.obs.span("phase.device", parent=span)
            yield self.vmm_core.submit(self.costs.virtio_request_rtt_ns, VMM_LABEL)
            yield from self._maybe_stall(parent=span)
            device_phase.close()
            outcome = yield from self.driver.handle_plug(chosen, parent=span)
            self.plugged_indices.update(outcome.plugged_block_indices)
            end = self.sim.now
            plugged_bytes = outcome.plugged_blocks * MEMORY_BLOCK_SIZE
            if partial is not None:
                error = "partial"
            elif host_short:
                error = "host-partial"
            else:
                error = ""
            self._trace_plug(
                span, start, end, n_blocks * MEMORY_BLOCK_SIZE, plugged_bytes, error
            )
            return PlugResult(
                requested_bytes=n_blocks * MEMORY_BLOCK_SIZE,
                plugged_bytes=plugged_bytes,
                latency_ns=end - start,
                zeroed_pages=outcome.zeroed_pages,
                error=error,
                fault=partial,
            )
        finally:
            self._release()

    def _trace_plug(
        self,
        span: SpanLike,
        start: int,
        end: int,
        requested: int,
        completed: int,
        error: str,
    ) -> None:
        """Close the plug span and emit the legacy event + metrics."""
        span.set(completed_bytes=completed, error=error)
        if not self._traced:
            self.tracer.record_plug(start, end, requested, completed)
        span.close(end_ns=end)
        self.obs.inc("plug_requests_total", error=error or "ok")
        if completed:
            self.obs.inc("plugged_bytes_total", completed)
        self.obs.observe("plug_latency_ns", end - start)

    def _trace_unplug(
        self,
        span: SpanLike,
        start: int,
        end: int,
        requested: int,
        completed: int,
        migrated_pages: int,
    ) -> None:
        """Close the unplug span and emit the legacy event + metrics."""
        span.set(completed_bytes=completed, migrated_pages=migrated_pages)
        if not self._traced:
            self.tracer.record_unplug(
                start, end, requested, completed, migrated_pages
            )
        span.close(end_ns=end)
        if completed == requested:
            outcome = "full"
        elif completed:
            outcome = "partial"
        else:
            outcome = "none"
        self.obs.inc("unplug_requests_total", outcome=outcome)
        if completed:
            self.obs.inc("unplugged_bytes_total", completed)
        if migrated_pages:
            self.obs.inc("migrated_pages_total", migrated_pages)
        self.obs.observe("unplug_latency_ns", end - start)

    def _maybe_stall(self, parent: SpanLike = NULL_SPAN):
        """Process generator: injected extra latency on the device response.

        A stalled response is *absorbed*: the request still completes,
        only slower, so the fault is resolved on the spot and the added
        latency shows up in the recovery log and the plug/unplug traces.
        """
        fault = self.faults.fire(DEVICE_RESPONSE_DELAY, parent=parent)
        if fault is None:
            return None
        delay = self.faults.delay_ns(DEVICE_RESPONSE_DELAY)
        yield Timeout(delay)
        self.faults.resolve(fault, "absorbed")
        if self.recovery is not None:
            self.recovery.record(
                site=DEVICE_RESPONSE_DELAY,
                path="absorbed",
                detect_ns=self.sim.now - delay,
                resolve_ns=self.sim.now,
                parent=parent,
            )
        return None

    def plug_at_boot(self, size_bytes: int, zone) -> List[int]:
        """State-only plug during VM boot (not traced, no latency).

        Used to pre-populate HotMem's shared partition and to build the
        statically over-provisioned configuration of Figure 9.
        """
        n_blocks = bytes_to_blocks(size_bytes)
        free_indices = [
            i
            for i in self.manager.hotplug_block_indices()
            if i not in self.plugged_indices
        ]
        if n_blocks > len(free_indices):
            raise HotplugError(
                f"boot plug of {format_bytes(size_bytes)} exceeds device region"
            )
        chosen = free_indices[:n_blocks]
        self.host_node.charge(n_blocks * MEMORY_BLOCK_SIZE)
        self.plugged_indices.update(chosen)
        self.driver.plug_at_boot(chosen, zone)
        return chosen

    # ------------------------------------------------------------------
    # Unplug
    # ------------------------------------------------------------------
    def unplug(self, size_bytes: int, parent: SpanLike = NULL_SPAN):
        """Process generator: ask the guest to release ``size_bytes``.

        The guest may satisfy the request only partially (virtio-mem
        semantics).  The returned :class:`UnplugResult` latency covers
        request receipt through ``madvise(MADV_DONTNEED)`` of the last
        reclaimed block — the paper's measurement (Section 5.4).

        When tracing, the ``device.unplug`` span is tiled gaplessly by
        ``phase.*`` children (device round-trip + stall here, offline/
        migrate/zero in the driver, madvise back here), so phase sums
        equal the recorded unplug latency to the nanosecond.
        """
        n_blocks = bytes_to_blocks(size_bytes)
        yield from self._acquire()
        try:
            if n_blocks > len(self.plugged_indices):
                n_blocks = len(self.plugged_indices)
            start = self.sim.now
            span = self.obs.span(
                "device.unplug",
                parent=parent,
                requested_bytes=n_blocks * MEMORY_BLOCK_SIZE,
            )
            device_phase = self.obs.span("phase.device", parent=span)
            yield self.vmm_core.submit(self.costs.virtio_request_rtt_ns, VMM_LABEL)
            yield from self._maybe_stall(parent=span)
            device_phase.close()
            outcome = yield from self.driver.handle_unplug(n_blocks, parent=span)
            for index in outcome.unplugged_block_indices:
                if index not in self.plugged_indices:
                    raise HotplugError(f"guest unplugged unknown block {index}")
                self.plugged_indices.discard(index)
            if outcome.unplugged_blocks:
                # One madvise per contiguous run, marginal cost per extra
                # block in a run (runs == blocks without batched unplug).
                runs = outcome.contiguous_runs or outcome.unplugged_blocks
                madvise_cost = (
                    runs * self.costs.madvise_block_ns
                    + (outcome.unplugged_blocks - runs)
                    * self.costs.madvise_block_marginal_ns
                )
                madvise_phase = self.obs.span("phase.device", parent=span)
                yield self.vmm_core.submit(madvise_cost, VMM_LABEL)
                madvise_phase.close()
                self.host_node.discharge(
                    outcome.unplugged_blocks * MEMORY_BLOCK_SIZE
                )
            end = self.sim.now
            unplugged_bytes = outcome.unplugged_blocks * MEMORY_BLOCK_SIZE
            self._trace_unplug(
                span,
                start,
                end,
                n_blocks * MEMORY_BLOCK_SIZE,
                unplugged_bytes,
                outcome.migrated_pages,
            )
            return UnplugResult(
                requested_bytes=n_blocks * MEMORY_BLOCK_SIZE,
                unplugged_bytes=unplugged_bytes,
                latency_ns=end - start,
                migrated_pages=outcome.migrated_pages,
                scanned_blocks=outcome.scanned_blocks,
            )
        finally:
            self._release()

    # ------------------------------------------------------------------
    # Sanity
    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        """Device and guest agreement on which blocks are plugged."""
        for i in self.manager.hotplug_block_indices():
            guest_online = self.manager.blocks[i].state is BlockState.ONLINE
            device_plugged = i in self.plugged_indices
            if guest_online != device_plugged:
                raise HotplugError(
                    f"block {i}: guest online={guest_online} but "
                    f"device plugged={device_plugged}"
                )
