"""virtio-mem: the paravirtualized memory hot(un)plug interface.

Device (VMM side) and driver (guest side) following Hildenbrand &
Schulz's design as shipped in Cloud Hypervisor: the device region is
chunked into 128 MiB blocks plugged and unplugged independently, with
requests serialized and completions acknowledged to the hypervisor.
Policy differences between stock Linux and HotMem are isolated behind
:class:`~repro.virtio.backend.HotplugBackend`.
"""

from repro.virtio.backend import HotplugBackend, UnplugPlanEntry, VanillaBackend
from repro.virtio.device import PlugResult, UnplugResult, VirtioMemDevice
from repro.virtio.driver import (
    VIRTIO_MEM_LABEL,
    DriverPlugOutcome,
    DriverUnplugOutcome,
    VirtioMemDriver,
)

__all__ = [
    "HotplugBackend",
    "VanillaBackend",
    "UnplugPlanEntry",
    "VirtioMemDevice",
    "PlugResult",
    "UnplugResult",
    "VirtioMemDriver",
    "DriverPlugOutcome",
    "DriverUnplugOutcome",
    "VIRTIO_MEM_LABEL",
]
