"""The guest-side virtio-mem driver.

Handles plug and unplug requests from the device, performing the actual
kernel work (hot-add/online, migrate/offline/hot-remove) and charging its
CPU time to the vCPU that serves virtio-mem interrupts — the paper pins
that vCPU explicitly (Section 5.4), and its contention with co-located
function instances is the interference mechanism of Figure 10.

All work is labelled ``"virtio-mem"`` for cpuacct-style accounting
(Figure 7).

Fault handling (see ``docs/faults.md``): each block on the unplug path
runs through :meth:`VirtioMemDriver._prepare_block`, which retries
isolate/migrate failures (injected via :mod:`repro.faults` or natural,
e.g. lost migration headroom) with exponential backoff per the driver's
:class:`~repro.faults.RetryPolicy`.  A block that exhausts its retries is
skipped (virtio-mem's partial-unplug semantics); a block that keeps
failing across ``quarantine_after`` requests is *quarantined* — withdrawn
from allocator service so the datapath stops tripping over it.  Every
outcome is recorded in the VM's
:class:`~repro.metrics.recovery.RecoveryLog`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import HotplugError, OfflineFailed
from repro.faults.injector import NO_FAULTS, FaultInjector, InjectedFault
from repro.faults.policy import NO_RETRY, RetryPolicy
from repro.faults.recovery import RecoveryLog
from repro.mm.manager import GuestMemoryManager
from repro.faults.sites import (
    DRIVER_BLOCK_TIMEOUT,
    DRIVER_MIGRATE_FAIL,
    DRIVER_OFFLINE_UNMOVABLE,
)
from repro.obs.context import NO_SCOPE, ObsScope
from repro.obs.span import NULL_SPAN, SpanLike
from repro.sim.costs import CostModel
from repro.sim.cpu import CpuCore
from repro.sim.engine import Simulator, Timeout
from repro.virtio.backend import HotplugBackend

__all__ = ["VirtioMemDriver", "DriverPlugOutcome", "DriverUnplugOutcome"]

#: Accounting label for all driver work (used by Figure 7's cgroup).
VIRTIO_MEM_LABEL = "virtio-mem"


@dataclass
class DriverPlugOutcome:
    """Guest-side result of one plug request."""

    plugged_block_indices: List[int] = field(default_factory=list)
    zeroed_pages: int = 0

    @property
    def plugged_blocks(self) -> int:
        return len(self.plugged_block_indices)


@dataclass
class DriverUnplugOutcome:
    """Guest-side result of one unplug request."""

    unplugged_block_indices: List[int] = field(default_factory=list)
    migrated_pages: int = 0
    zeroed_pages: int = 0
    scanned_blocks: int = 0
    failed_blocks: int = 0
    #: Indices of the blocks that could not be offlined this request
    #: (skipped or quarantined); callers can requeue the shortfall.
    failed_block_indices: List[int] = field(default_factory=list)
    #: Contiguous runs the blocks were offlined in (== block count unless
    #: the driver runs with batched unplug).
    contiguous_runs: int = 0

    @property
    def unplugged_blocks(self) -> int:
        return len(self.unplugged_block_indices)


class VirtioMemDriver:
    """Guest driver bound to one VM's memory manager and IRQ vCPU."""

    def __init__(
        self,
        sim: Simulator,
        manager: GuestMemoryManager,
        backend: HotplugBackend,
        costs: CostModel,
        irq_core: CpuCore,
        batch_unplug: bool = False,
        faults: FaultInjector = NO_FAULTS,
        retry: RetryPolicy = NO_RETRY,
        recovery: Optional[RecoveryLog] = None,
        obs: ObsScope = NO_SCOPE,
    ):
        """``batch_unplug`` enables the future-work optimization the paper
        names in Section 6.1.1: contiguous runs of offlineable blocks are
        offlined and removed as one operation, amortizing the per-block
        fixed costs (marginal costs still apply per extra block)."""
        self.sim = sim
        self.manager = manager
        self.backend = backend
        self.costs = costs
        self.irq_core = irq_core
        self.batch_unplug = batch_unplug
        self.faults = faults
        self.retry = retry
        self.recovery = recovery
        self.obs = obs
        #: Requests that exhausted their retries, per block index (feeds
        #: the ``quarantine_after`` threshold; reset on success).
        self._offline_failures: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Plug path
    # ------------------------------------------------------------------
    def handle_plug(self, block_indices: List[int], parent: SpanLike = NULL_SPAN):
        """Process generator: hot-add and online the given device blocks.

        The backend decides the target zones (``ZONE_MOVABLE`` for
        vanilla, empty HotMem partitions for HotMem) and whether onlining
        may skip zeroing.  Returns a :class:`DriverPlugOutcome`.
        """
        outcome = DriverPlugOutcome()
        placement = self.backend.zones_for_plug(len(block_indices))
        planned = sum(count for _, count in placement)
        if planned < len(block_indices):
            raise HotplugError(
                f"backend placed only {planned} of {len(block_indices)} blocks"
            )
        remaining = list(block_indices)
        zero_pages = self.backend.plug_zero_pages_per_block()
        for zone, count in placement:
            for _ in range(count):
                if not remaining:
                    break
                index = remaining.pop(0)
                block = self.manager.online_block(index, zone)
                self.backend.on_block_plugged(block)
                cost = self.costs.plug_block_ns(zero_pages=zero_pages)
                outcome.zeroed_pages += zero_pages
                block_span = self.obs.span(
                    "driver.plug.block",
                    parent=parent,
                    block=index,
                    zeroed_pages=zero_pages,
                )
                yield self.irq_core.submit(cost, VIRTIO_MEM_LABEL)
                block_span.close()
                outcome.plugged_block_indices.append(index)
        return outcome

    def plug_at_boot(self, block_indices: List[int], zone) -> None:
        """State-only plug used while the VM boots (no simulated latency).

        Boot-time population (e.g. HotMem's shared partition, Section 4)
        happens before the guest starts serving requests, so it is not
        part of any measured plug path.
        """
        for index in block_indices:
            block = self.manager.online_block(index, zone)
            self.backend.on_block_plugged(block)

    # ------------------------------------------------------------------
    # Unplug path
    # ------------------------------------------------------------------
    def handle_unplug(self, n_blocks: int, parent: SpanLike = NULL_SPAN):
        """Process generator: offline and remove up to ``n_blocks`` blocks.

        The backend chooses the victim blocks.  For vanilla this migrates
        each block's occupants (the expensive path); for HotMem the blocks
        belong to empty partitions and are removed without any migration.
        Returns a :class:`DriverUnplugOutcome`; fewer blocks than requested
        means a partial unplug (virtio-mem semantics).

        Tracing opens one ``driver.unplug.block`` span per planned block
        with ``phase.offline``/``phase.migrate``/``phase.zero`` children
        that tile the block's wall time exactly; the trailing offline +
        hot-remove of each prepared run is a ``phase.offline`` span
        parented on the device request.
        """
        outcome = DriverUnplugOutcome()
        plan = self.backend.plan_unplug(n_blocks)
        if self.batch_unplug:
            runs = self._contiguous_runs(plan)
        else:
            runs = [[entry] for entry in plan]
        for run in runs:
            prepared: List = []
            for entry in run:
                block = entry.block
                block_span = self.obs.span(
                    "driver.unplug.block", parent=parent, block=block.index
                )
                offline_phase = self.obs.span(
                    "phase.offline", parent=block_span
                )
                outcome.scanned_blocks += entry.scanned_blocks
                scan_cost = entry.scanned_blocks * self.costs.unplug_scan_block_ns
                if scan_cost:
                    yield self.irq_core.submit(scan_cost, VIRTIO_MEM_LABEL)
                migrated = yield from self._prepare_block(
                    block, parent=block_span
                )
                offline_phase.close()
                if migrated is None:
                    outcome.failed_blocks += 1
                    outcome.failed_block_indices.append(block.index)
                    block_span.close(failed=True)
                    continue
                zeroed = self.backend.unplug_zero_pages(migrated)
                move_cost = self.costs.migrate_pages_ns(
                    migrated
                ) + self.costs.zero_pages_ns(zeroed)
                if move_cost:
                    move_start = self.sim.now
                    yield self.irq_core.submit(move_cost, VIRTIO_MEM_LABEL)
                    move_end = self.sim.now
                    # Migration and zeroing share one CPU submission (one
                    # event, so tracing cannot perturb the stream).  The
                    # zero tile is exactly the modeled zeroing cost; the
                    # migrate tile absorbs the remainder, including any
                    # core queueing — the two tile [start, end] with
                    # nanosecond-exact sums.
                    zero_ns = self.costs.zero_pages_ns(zeroed)
                    self.obs.span(
                        "phase.migrate",
                        parent=block_span,
                        start_ns=move_start,
                        pages=migrated,
                    ).close(end_ns=move_end - zero_ns)
                    self.obs.span(
                        "phase.zero",
                        parent=block_span,
                        start_ns=move_end - zero_ns,
                        pages=zeroed,
                    ).close(end_ns=move_end)
                outcome.migrated_pages += migrated
                outcome.zeroed_pages += zeroed
                prepared.append(block)
                block_span.close(migrated_pages=migrated, zeroed_pages=zeroed)
            if prepared:
                finish_phase = self.obs.span(
                    "phase.offline", parent=parent, blocks=len(prepared)
                )
                yield from self._finish_run(prepared, outcome)
                finish_phase.close()
        return outcome

    def _prepare_block(self, block, parent: SpanLike = NULL_SPAN):
        """Process generator: isolate + migrate one block, with retries.

        Returns the migrated page count on success (the block is left
        isolated and empty, ready for :meth:`_finish_run`) or ``None``
        when the driver gave up on the block — either skipping it for
        this request (partial unplug) or quarantining it.  ``parent``
        (the block's span) is threaded to every fault fired and recovery
        event recorded here, so retry and quarantine spans share the
        originating request's trace id.
        """
        pending: List[InjectedFault] = []
        detect_ns: Optional[int] = None
        failure = ""
        attempt = 0
        while True:
            attempt += 1
            failure = ""
            fault = self.faults.fire(
                DRIVER_BLOCK_TIMEOUT,
                parent=parent,
                block_index=block.index,
                attempt=attempt,
            )
            if fault is not None:
                # The per-block operation hangs until the watchdog fires.
                pending.append(fault)
                yield Timeout(self.retry.block_timeout_ns)
                failure = "timeout"
            if not failure:
                fault = self.faults.fire(
                    DRIVER_OFFLINE_UNMOVABLE,
                    parent=parent,
                    block_index=block.index,
                    attempt=attempt,
                )
                if fault is not None:
                    pending.append(fault)
                    failure = "unmovable"
                else:
                    try:
                        self.manager.isolate_block(block)
                    except OfflineFailed:
                        failure = "offline"
            if not failure:
                fault = self.faults.fire(
                    DRIVER_MIGRATE_FAIL,
                    parent=parent,
                    block_index=block.index,
                    attempt=attempt,
                )
                if fault is not None:
                    pending.append(fault)
                    self.manager.unisolate_block(block)
                    failure = "migrate"
                else:
                    try:
                        migrated = self.backend.migrate_for_unplug(block)
                    except OfflineFailed:
                        # Not enough migration headroom (the guest
                        # allocated since planning); retry or give up.
                        self.manager.unisolate_block(block)
                        failure = "migrate"
            if not failure:
                if attempt > 1:
                    self._resolve_all(pending, "retried", attempt)
                    self._record(
                        "driver.unplug.retry",
                        "retried",
                        detect_ns,
                        attempt,
                        block.index,
                        parent=parent,
                    )
                self._offline_failures.pop(block.index, None)
                return migrated
            if detect_ns is None:
                detect_ns = self.sim.now
            if attempt > self.retry.max_retries:
                self._give_up(
                    block, failure, detect_ns, pending, attempt, parent=parent
                )
                return None
            yield Timeout(self.retry.backoff_ns(attempt))

    def _give_up(
        self,
        block,
        failure: str,
        detect_ns: int,
        pending: List[InjectedFault],
        attempts: int,
        parent: SpanLike = NULL_SPAN,
    ) -> None:
        """Stop retrying ``block`` this request: skip it or quarantine it."""
        failures = self._offline_failures.get(block.index, 0) + 1
        self._offline_failures[block.index] = failures
        path = "partial-unplug"
        if self.retry.quarantine_after and failures >= self.retry.quarantine_after:
            try:
                self.manager.quarantine_block(block, reason=failure)
            except OfflineFailed:
                # Block left ONLINE-but-unquarantinable state mid-failure;
                # fall back to skipping it for this request.
                pass
            else:
                self.backend.on_block_quarantined(block)
                self._offline_failures.pop(block.index, None)
                path = "quarantined"
        self._resolve_all(pending, path, attempts)
        self._record(
            f"driver.unplug.{failure}",
            path,
            detect_ns,
            attempts,
            block.index,
            parent=parent,
        )

    def _resolve_all(
        self, pending: List[InjectedFault], path: str, attempts: int
    ) -> None:
        """Mark every fault hit while working on one block as handled."""
        for fault in pending:
            self.faults.resolve(fault, path, attempts=attempts)
        pending.clear()

    def _record(
        self,
        site: str,
        path: str,
        detect_ns: Optional[int],
        attempts: int,
        block_index: int,
        parent: SpanLike = NULL_SPAN,
    ) -> None:
        if self.recovery is None:
            return
        self.recovery.record(
            site=site,
            path=path,
            detect_ns=self.sim.now if detect_ns is None else detect_ns,
            resolve_ns=self.sim.now,
            attempts=attempts,
            block_index=block_index,
            parent=parent,
        )

    @staticmethod
    def _contiguous_runs(plan):
        """Group plan entries into runs of adjacent physical blocks."""
        runs: List[List] = []
        for entry in sorted(plan, key=lambda e: e.block.index):
            if runs and entry.block.index == runs[-1][-1].block.index + 1:
                runs[-1].append(entry)
            else:
                runs.append([entry])
        return runs

    def _finish_run(self, blocks, outcome: DriverUnplugOutcome):
        """Offline and hot-remove one prepared (empty, isolated) run.

        The run is processed as a single operation: full fixed cost for
        the first block, marginal cost for each additional one.
        """
        extra = len(blocks) - 1
        cost = (
            self.costs.offline_block_base_ns
            + self.costs.hot_remove_block_ns
            + extra
            * (
                self.costs.offline_block_marginal_ns
                + self.costs.hot_remove_block_marginal_ns
            )
        )
        yield self.irq_core.submit(cost, VIRTIO_MEM_LABEL)
        for block in blocks:
            self.manager.offline_and_remove(block, migrate=False)
            self.backend.on_block_unplugged(block)
            outcome.unplugged_block_indices.append(block.index)
        outcome.contiguous_runs += 1
        return None
