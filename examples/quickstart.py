#!/usr/bin/env python3
"""Quickstart: the HotMem mechanism end to end in ~60 lines.

Builds one HotMem microVM and one vanilla microVM, runs the same
workload in both (allocate → exit → reclaim), and prints the unplug
latency gap — the paper's headline result, at toy scale.

Run:  python examples/quickstart.py
"""

from repro import DeploymentMode, Fleet, Simulator, VmSpec
from repro.units import MIB, format_bytes, format_ns
from repro.workloads import Memhog


def run_one(mode: str) -> tuple[int, int]:
    """Plug 3 GiB, host eight 384 MiB instances, recycle two, reclaim."""
    sim = Simulator()
    fleet = Fleet(sim)

    if mode == "hotmem":
        # The spec a serverless runtime would declare (Section 4.1):
        # per-instance partition size, concurrency factor N, shared size.
        spec = VmSpec.for_function(
            mode,
            DeploymentMode.HOTMEM,
            memory_limit_bytes=384 * MIB,
            concurrency=8,
        )
    else:
        spec = VmSpec(mode, region_bytes=8 * 384 * MIB)
    vm = fleet.provision(spec).vm

    # Scale the VM up (the runtime plugs memory for the instances).
    plug = vm.request_plug(8 * 384 * MIB)
    sim.run()
    print(f"[{mode}] plugged {format_bytes(plug.value.plugged_bytes)} "
          f"in {format_ns(plug.value.latency_ns)}")

    # Eight "function instances" fault in ~320 MiB each.
    instances = [
        Memhog(vm, 320 * MIB, vcpu_index=i % 10,
               use_hotmem=(mode == "hotmem"), name=f"fn-{i}")
        for i in range(8)
    ]
    for instance in instances:
        instance.materialize()

    # Two instances are recycled; the runtime shrinks the VM by 768 MiB.
    for instance in instances[-2:]:
        instance.release()
    unplug = vm.request_unplug(2 * 384 * MIB)
    sim.run()
    result = unplug.value
    print(f"[{mode}] reclaimed {format_bytes(result.unplugged_bytes)} "
          f"in {format_ns(result.latency_ns)} "
          f"(migrated {result.migrated_pages} pages)")
    vm.check_consistency()
    return result.latency_ns, result.migrated_pages


def main() -> None:
    vanilla_ns, vanilla_migrated = run_one("vanilla")
    hotmem_ns, hotmem_migrated = run_one("hotmem")
    print()
    print(f"vanilla migrated {vanilla_migrated} pages, "
          f"HotMem migrated {hotmem_migrated};")
    print(f"HotMem reclaimed the same memory "
          f"{vanilla_ns / hotmem_ns:.1f}x faster.")


if __name__ == "__main__":
    main()
