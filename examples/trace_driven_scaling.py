#!/usr/bin/env python3
"""Trace-driven elasticity: the full serverless stack in one script.

Replays the same bursty Azure-shaped trace against one VM per deployment
mode (HotMem / vanilla virtio-mem / statically over-provisioned) and
reports what the paper's Figures 8 and 9 report: memory-reclamation
throughput during scale-down and the P99 of successful invocations.

Run:  python examples/trace_driven_scaling.py [function]
      (function defaults to "bert"; any of cnn/bert/bfs/html works)
"""

import sys

from repro import DeploymentMode, FunctionLoad, ServerlessScenario, run_scenario
from repro.metrics import p99_ms, render_table


def main() -> None:
    function = sys.argv[1] if len(sys.argv) > 1 else "bert"
    rows = []
    for mode in (
        DeploymentMode.HOTMEM,
        DeploymentMode.VANILLA,
        DeploymentMode.OVERPROVISIONED,
    ):
        scenario = ServerlessScenario(
            mode=mode,
            loads=(FunctionLoad.for_function(function),),
            duration_s=150,
            keep_alive_s=30,
            recycle_interval_s=10,
        )
        run = run_scenario(scenario)
        records = run.records_for(function)
        plugs = run.plug_latencies_ms()
        rows.append(
            [
                mode.value,
                len(records),
                run.cold_starts[function],
                p99_ms(records),
                run.reclaim_mib_per_s,
                sum(plugs) / len(plugs) if plugs else 0.0,
                sum(e.evicted for e in run.shrink_events),
            ]
        )
    print(
        render_table(
            f"Trace-driven scaling for {function!r} "
            f"(burst then low load, keep-alive eviction)",
            [
                "mode",
                "requests",
                "colds",
                "p99_ms",
                "reclaim_mib_s",
                "avg_plug_ms",
                "evicted",
            ],
            rows,
        )
    )
    print()
    hotmem, vanilla = rows[0], rows[1]
    print(
        f"HotMem reclaimed memory {hotmem[4] / max(vanilla[4], 1e-9):.1f}x "
        f"faster than vanilla while serving the same load, and its P99 is "
        f"within {abs(hotmem[3] - rows[2][3]) / rows[2][3]:.0%} of the "
        f"over-provisioned baseline."
    )


if __name__ == "__main__":
    main()
