#!/usr/bin/env python3
"""Co-location interference demo (the paper's Figure 10 scenario).

Cnn and HTML share one VM.  Cnn is pinned to two vCPUs, one of which
also services virtio-mem interrupts.  When the keep-alive recycler
evicts the burst of idle HTML instances and the runtime shrinks the VM,
vanilla unplug migrates pages on that shared vCPU and Cnn's per-second
latency spikes; HotMem removes empty partitions and Cnn is untouched.

Run:  python examples/colocated_interference.py
"""

import math

from repro.experiments import fig10_interference as fig10


def sparkline(series, lo, hi):
    """Render a latency series as a coarse text sparkline."""
    glyphs = " .:-=+*#%@"
    out = []
    for _, value in series:
        if math.isnan(value):
            out.append(" ")
            continue
        level = (value - lo) / (hi - lo) if hi > lo else 0
        out.append(glyphs[min(len(glyphs) - 1, max(0, int(level * len(glyphs))))])
    return "".join(out)


def main() -> None:
    config = fig10.Fig10Config()
    print(
        f"Running {config.duration_s}s with Cnn on vCPUs 0-1 (vCPU 0 serves "
        f"virtio-mem IRQs) and up to {config.html_instances} HTML instances "
        f"on vCPUs 2-9; keep-alive {config.keep_alive_s}s ..."
    )
    result = fig10.run(config)
    print()
    print(result.render())
    print()
    values = [
        v
        for mode in ("vanilla", "hotmem")
        for _, v in result.cnn_series[mode]
        if not math.isnan(v)
    ]
    lo, hi = min(values), max(values)
    for mode in ("vanilla", "hotmem"):
        line = sparkline(result.cnn_series[mode], lo, hi)
        shrink = result.shrink_times_s[mode]
        marker = " " * int(shrink[0]) + "^shrink" if shrink else ""
        print(f"{mode:>8} |{line}|")
        if marker:
            print(f"{'':>8}  {marker}")
    print()
    print(
        f"Around the first shrink, vanilla's per-second Cnn latency rose to "
        f"{result.window_mean['vanilla']:.2f}x its baseline "
        f"(peak {result.spike['vanilla']:.2f}x) while HotMem stayed at "
        f"{result.window_mean['hotmem']:.2f}x — the zero-migration reclaim "
        f"path eliminates the interference."
    )


if __name__ == "__main__":
    main()
