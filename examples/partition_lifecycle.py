#!/usr/bin/env python3
"""Walk the HotMem partition state machine by hand.

Follows one partition through its whole life — EMPTY → plug → POPULATED
→ attach → ASSIGNED → fork → exit → POPULATED (instant reuse) → unplug →
EMPTY — printing the kernel-visible state at every step.  This is the
Section 4 mechanism at its smallest.

Run:  python examples/partition_lifecycle.py
"""

from repro import DeploymentMode, Fleet, Simulator, VirtualMachine, VmSpec
from repro.units import MIB, format_bytes, format_ns


def show(step: str, vm: VirtualMachine) -> None:
    parts = " ".join(
        f"[{p.partition_id}:{p.state.value}:{p.partition_users}u]"
        for p in vm.hotmem.partitions
    )
    print(f"{step:<42} plugged={format_bytes(vm.device.plugged_bytes):>7}  {parts}")


def main() -> None:
    sim = Simulator()
    spec = VmSpec.for_function(
        "lifecycle",
        DeploymentMode.HOTMEM,
        memory_limit_bytes=384 * MIB,
        concurrency=3,
        shared_bytes=128 * MIB,
    )
    vm = Fleet(sim).provision(spec).vm
    show("boot (shared partition pre-populated)", vm)

    # Scale-up: plug one instance's worth; partition 0 gets populated.
    plug = vm.request_plug(spec.partition_bytes)
    sim.run()
    show(f"plug 384MiB ({format_ns(plug.value.latency_ns)})", vm)

    # The instance attaches (the HotMem syscall) and faults its memory in.
    leader = vm.new_process("instance-leader")
    partition = vm.hotmem.try_attach(leader)
    vm.fault_handler.fault_anon(leader, 70_000)  # ~273 MiB
    show(f"attach + fault 273MiB into partition {partition.partition_id}", vm)

    # clone(): a worker process joins the same partition.
    worker = vm.new_process("instance-worker")
    vm.hotmem.fork(leader, worker)
    vm.fault_handler.fault_anon(worker, 10_000)
    show("fork worker (refcount 2, same partition)", vm)

    # Exit: worker first, then the leader releases the partition.
    vm.exit_process(worker)
    show("worker exits (refcount 1)", vm)
    vm.exit_process(leader)
    show("leader exits (partition free, still populated)", vm)

    # Instant reuse: the next instance attaches with zero plug work.
    second = vm.new_process("second-instance")
    vm.hotmem.try_attach(second)
    show("next instance attaches (no plug needed)", vm)
    vm.exit_process(second)

    # Scale-down: the runtime reclaims the partition — zero migrations.
    unplug = vm.request_unplug(spec.partition_bytes)
    sim.run()
    result = unplug.value
    show(
        f"unplug 384MiB ({format_ns(result.latency_ns)}, "
        f"{result.migrated_pages} migrations)",
        vm,
    )
    vm.check_consistency()
    print("\nThe partition went EMPTY → POPULATED → ASSIGNED → POPULATED →")
    print("ASSIGNED → POPULATED → EMPTY; reclaiming it never migrated a page.")


if __name__ == "__main__":
    main()
