#!/usr/bin/env python3
"""Every VM memory-elasticity interface on one reclaim scenario.

Runs the A5 comparison: a loaded 6 GiB guest frees 1.5 GiB and the
hypervisor asks for it back through each interface Linux offers —
HotMem's partition-aware virtio-mem, stock virtio-mem, virtio-balloon,
whole-DIMM hotplug, and free page reporting — first relaxed, then under
memory pressure where the weaknesses show.

Run:  python examples/compare_interfaces.py
"""

from repro.experiments import baselines_comparison as bc


def main() -> None:
    relaxed = bc.run()
    print(relaxed.render())
    print()
    for other in ("virtio-mem", "balloon", "dimm", "fpr"):
        print(
            f"  HotMem vs {other:11}: {relaxed.speedup_over(other):6.1f}x faster"
        )
    print()
    pressure = bc.run(bc.BaselinesConfig.pressure())
    print("Under pressure (freed 512MiB, asked 1536MiB, 95% guest usage):")
    print(pressure.render())
    print()
    balloon = pressure.by_mechanism["balloon"]
    dimm = pressure.by_mechanism["dimm"]
    hotmem = pressure.by_mechanism["hotmem"]
    print(
        f"Ballooning stalled through {balloon.balloon_retries} retries and "
        f"still delivered only {balloon.reclaimed_fraction:.0%}; DIMM hotplug "
        f"wasted {dimm.wasted_migrated_pages} page migrations on aborted "
        f"units; HotMem handed back exactly the freed partitions in "
        f"{hotmem.latency_ms:.0f} ms."
    )


if __name__ == "__main__":
    main()
