#!/usr/bin/env python3
"""Raw reclamation microbenchmark (the paper's Figures 5 and 6 scenario).

Fills a guest with memhog processes, then measures the hypervisor-side
latency of unplug requests — sweeping the reclaim size (Figure 5) and
the guest memory usage (Figure 6) — for vanilla virtio-mem and HotMem.

Run:  python examples/memory_elasticity_microbench.py
"""

from repro import MicrobenchRig, MicrobenchSetup
from repro.metrics import render_table
from repro.units import GIB, MIB, format_bytes


def sweep_sizes() -> None:
    rows = []
    for reclaim in (384 * MIB, 768 * MIB, 1536 * MIB):
        row = [format_bytes(reclaim)]
        for mode in ("vanilla", "hotmem"):
            rig = MicrobenchRig(
                MicrobenchSetup(
                    mode=mode, total_bytes=3 * GIB, partition_bytes=384 * MIB
                )
            )
            measurement = rig.run_single_reclaim(reclaim)
            row.append(measurement.latency_ms)
        row.append(row[1] / row[2])
        rows.append(row)
    print(
        render_table(
            "Reclaim latency vs size (memhog-loaded guest, 3GiB plugged)",
            ["size", "vanilla_ms", "hotmem_ms", "speedup"],
            rows,
        )
    )


def sweep_usage() -> None:
    rows = []
    for usage in (0.2, 0.5, 0.8):
        row = [f"{usage:.0%}"]
        for mode in ("vanilla", "hotmem"):
            rig = MicrobenchRig(
                MicrobenchSetup(
                    mode=mode,
                    total_bytes=8 * GIB,
                    partition_bytes=1 * GIB,
                    usage_fraction=usage,
                )
            )
            measurement = rig.run_single_reclaim(1 * GIB)
            row.append(measurement.latency_ms)
        rows.append(row)
    print(
        render_table(
            "Reclaim 1GiB of 8GiB vs guest memory usage",
            ["usage", "vanilla_ms", "hotmem_ms"],
            rows,
        )
    )


def main() -> None:
    sweep_sizes()
    print()
    sweep_usage()
    print()
    print(
        "Vanilla latency scales with occupied pages (migrations); HotMem "
        "is flat because free partitions are removed without touching a "
        "single occupied page."
    )


if __name__ == "__main__":
    main()
