#!/usr/bin/env python3
"""Sweep microbenchmark runner and regression gate.

Usage::

    python tools/bench.py                 # run jobs, print the table
    python tools/bench.py --update        # refresh BENCH_sweep.json
    python tools/bench.py --check         # gate against the snapshot

``--check`` exits 1 when any throughput job drops below ``--min-ratio``
of its committed value (soft: wall-clock numbers absorb host variance)
or when the untraced-obs path retains memory (absolute: that path must
stay allocation-free).  Job definitions and the snapshot schema live in
:mod:`repro.sweep.bench` and ``docs/sweeps.md``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

# Make the src layout importable when running from a bare checkout.
_REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.sweep.bench import (  # noqa: E402  (path bootstrap above)
    compare,
    load_snapshot,
    render_snapshot,
    run_all,
    snapshot,
)

#: Default location of the committed snapshot.
DEFAULT_SNAPSHOT = _REPO_ROOT / "BENCH_sweep.json"


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/bench.py",
        description="Run the sweep microbenchmarks; snapshot or gate.",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="write the measured values to the snapshot file and exit 0",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed snapshot; exit 1 on regression",
    )
    parser.add_argument(
        "--snapshot",
        metavar="FILE",
        default=str(DEFAULT_SNAPSHOT),
        help="snapshot path (default: BENCH_sweep.json at the repo root)",
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=0.5,
        metavar="R",
        help="soft gate: fail a throughput job below R of its committed "
        "value (default 0.5)",
    )
    args = parser.parse_args(argv)
    if args.update and args.check:
        print("--update and --check are mutually exclusive", file=sys.stderr)
        return 2

    results = run_all()
    committed = load_snapshot(args.snapshot)
    committed_jobs = (committed or {}).get("jobs", {})
    for result in results:
        entry = committed_jobs.get(result.name)
        reference = (
            f" (committed {float(entry['value']):.2f})" if entry else ""
        )
        print(f"[bench: {result.name}={result.value:.2f} {result.unit}{reference}]")

    if args.update:
        Path(args.snapshot).write_text(
            render_snapshot(snapshot(results)), encoding="utf-8"
        )
        print(f"[bench: snapshot written to {args.snapshot}]")
        return 0

    if args.check:
        if committed is None:
            print(
                f"no snapshot at {args.snapshot!r}; create one with "
                f"--update and commit it",
                file=sys.stderr,
            )
            return 2
        failures = compare(results, committed, min_ratio=args.min_ratio)
        for failure in failures:
            print(f"[bench: REGRESSION {failure}]", file=sys.stderr)
        if failures:
            return 1
        print(f"[bench: ok, {len(results)} job(s) within threshold]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
