#!/usr/bin/env python3
"""Repo lint gate: run the AST rule pass over source trees.

Usage::

    python tools/lint.py                # lint src/ (the CI gate)
    python tools/lint.py src tests      # explicit paths
    python tools/lint.py --json src     # machine-readable findings
    python tools/lint.py --list-rules   # show the enforced conventions

Exits 0 when no rule fires, 1 otherwise (2 on bad usage).  Rules,
scoping and the ``# lint: allow[rule]`` suppression syntax are
documented in ``docs/analysis.md`` and ``repro/analysis/lint.py``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Make the src layout importable when running from a bare checkout.
_REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.analysis.lint import (  # noqa: E402  (path bootstrap above)
    RULES,
    lint_paths,
    render_json,
    render_text,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/lint.py",
        description="AST lint for determinism and mm-encapsulation rules.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit findings as a JSON array instead of text",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list rule names and what they enforce, then exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, description in RULES.items():
            print(f"{name:22} {description}")
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"no such path(s): {', '.join(map(str, missing))}", file=sys.stderr
        )
        return 2

    errors = lint_paths(paths)
    if args.json:
        print(render_json(errors))
    elif errors:
        print(render_text(errors))
    if errors:
        print(
            f"\n{len(errors)} lint finding(s); suppress intentional ones "
            f"with '# lint: allow[rule-name]'",
            file=sys.stderr,
        )
        return 1
    if not args.json:
        print(f"lint clean: {', '.join(map(str, args.paths))}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
