#!/usr/bin/env python3
"""Repo lint gate: AST + CFG/dataflow rules over source trees.

Usage::

    python tools/lint.py                      # lint src/ (the CI gate)
    python tools/lint.py src tests            # explicit paths
    python tools/lint.py --json src           # machine-readable findings
    python tools/lint.py --sarif lint.sarif   # SARIF 2.1.0 (code scanning)
    python tools/lint.py --changed            # only files differing from main
    python tools/lint.py --update-baseline    # accept current findings
    python tools/lint.py --list-rules         # show the enforced conventions

Exits 0 when no *non-baselined* rule fires, 1 otherwise (2 on bad
usage).  Findings recorded in ``tools/lint-baseline.json`` (by rule,
path and content fingerprint — see ``repro.analysis.baseline``) are
reported separately and do not gate; regenerate the file with
``--update-baseline`` (deterministic output).  Rules, scoping and the
``# lint: allow[rule]`` suppression syntax are documented in
``docs/analysis.md``.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

# Make the src layout importable when running from a bare checkout.
_REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.analysis.baseline import (  # noqa: E402  (path bootstrap above)
    load_baseline,
    render_baseline,
    split_baselined,
)
from repro.analysis.lint import (  # noqa: E402
    RULES,
    iter_py_files,
    lint_paths,
    render_json,
    render_text,
)
from repro.analysis.rules import DEFAULT_REGISTRY  # noqa: E402
from repro.analysis.sarif import render_sarif  # noqa: E402

#: Default location of the accepted-findings baseline.
DEFAULT_BASELINE = _REPO_ROOT / "tools" / "lint-baseline.json"


def changed_files(base: str = "main") -> List[Path]:
    """Python files differing from ``base`` (staged, unstaged or
    committed), for fast local iteration.  Deleted files are skipped."""
    merge_base = subprocess.run(
        ["git", "merge-base", "HEAD", base],
        capture_output=True,
        text=True,
        cwd=_REPO_ROOT,
    )
    anchor = merge_base.stdout.strip() if merge_base.returncode == 0 else base
    diff = subprocess.run(
        ["git", "diff", "--name-only", "--diff-filter=d", anchor, "--"],
        capture_output=True,
        text=True,
        cwd=_REPO_ROOT,
    )
    if diff.returncode != 0:
        raise RuntimeError(
            f"git diff against {base!r} failed: {diff.stderr.strip()}"
        )
    return [
        Path(line)
        for line in diff.stdout.splitlines()
        if line.endswith(".py") and Path(line).exists()
    ]


def _read_lines(paths: Sequence[Path]) -> Dict[str, Sequence[str]]:
    return {
        str(path): path.read_text(encoding="utf-8").splitlines()
        for path in paths
        if path.is_file()
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/lint.py",
        description=(
            "AST + CFG/dataflow lint for determinism, encapsulation and "
            "yield-race rules."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit findings as a JSON array instead of text",
    )
    parser.add_argument(
        "--sarif",
        metavar="FILE",
        help="also write findings as SARIF 2.1.0 to FILE ('-' for stdout)",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="lint only .py files differing from main (fast local loop)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=str(DEFAULT_BASELINE),
        help="accepted-findings baseline (default: tools/lint-baseline.json)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file; every finding gates",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="record the current findings as accepted and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list rule names and what they enforce, then exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for name in RULES:
            kind = DEFAULT_REGISTRY.get(name).kind
            print(f"{name:26} [{kind:4}] {RULES[name]}")
        return 0

    if args.changed:
        try:
            files = changed_files()
        except RuntimeError as error:
            print(str(error), file=sys.stderr)
            return 2
        # Honour the path filter: only changed files under the requested
        # trees (resolved relative to the repo root, where git reports).
        roots = [(_REPO_ROOT / p).resolve() for p in args.paths]
        paths = [
            _REPO_ROOT / f
            for f in files
            if any(
                (_REPO_ROOT / f).resolve().is_relative_to(root)
                for root in roots
            )
        ]
        if not paths:
            print("lint --changed: no python files differ from main")
            return 0
    else:
        paths = [Path(p) for p in args.paths]
        missing = [p for p in paths if not p.exists()]
        if missing:
            print(
                f"no such path(s): {', '.join(map(str, missing))}",
                file=sys.stderr,
            )
            return 2

    errors = lint_paths(paths)
    lines_by_path = _read_lines(iter_py_files(paths))

    if args.update_baseline:
        Path(args.baseline).write_text(
            render_baseline(errors, lines_by_path), encoding="utf-8"
        )
        print(
            f"baseline: recorded {len(errors)} accepted finding(s) in "
            f"{args.baseline}"
        )
        return 0

    baseline_path = Path(args.baseline)
    if not args.no_baseline and baseline_path.is_file():
        accepted = load_baseline(baseline_path)
        errors, grandfathered = split_baselined(
            errors, accepted, lines_by_path
        )
    else:
        grandfathered = []

    if args.sarif:
        sarif = render_sarif(errors, lines_by_path)
        if args.sarif == "-":
            print(sarif, end="")
        else:
            Path(args.sarif).write_text(sarif, encoding="utf-8")

    if args.json:
        print(render_json(errors))
    elif errors:
        # Keep stdout machine-readable when the SARIF log went there.
        findings_stream = sys.stderr if args.sarif == "-" else sys.stdout
        print(render_text(errors), file=findings_stream)
    if grandfathered:
        print(
            f"[baseline] {len(grandfathered)} grandfathered finding(s) "
            f"not gating (see {baseline_path})",
            file=sys.stderr,
        )
    if errors:
        print(
            f"\n{len(errors)} lint finding(s); suppress intentional ones "
            f"with '# lint: allow[rule-name]' or accept them with "
            f"--update-baseline",
            file=sys.stderr,
        )
        return 1
    if not args.json and args.sarif != "-":
        print(f"lint clean: {', '.join(map(str, args.paths))}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
