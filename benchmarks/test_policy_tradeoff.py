"""P1: spare-slot policy — does HotMem still need idle-memory buffers?

The memory-harvesting systems the paper cites keep idle buffers around
to mask slow reclamation.  With HotMem's cheap plugs the buffers stop
paying for themselves; with an artificially slow plug path they matter
again — buffers are a workaround HotMem obviates.
"""

from repro.experiments import policy_tradeoff


def test_policy_tradeoff(run_once):
    result = run_once(policy_tradeoff.run)
    print()
    print(result.render())
    print(
        f"cold-latency saved by max spares: "
        f"{result.fast_plug_benefit():.1f} ms with HotMem plugs, "
        f"{result.slow_plug_benefit():.1f} ms with 8x slower plugs"
    )
    assert result.slow_plug_benefit() > 5 * max(result.fast_plug_benefit(), 1.0)
