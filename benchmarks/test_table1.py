"""Table 1: serverless functions and their assigned resource limits."""

from repro.experiments import table1


def test_table1(run_once):
    text = run_once(table1.render)
    print()
    print(text)
    assert "Bert" in text and "640" in text
