"""Figure 6: reclaiming 2 GiB as guest memory usage increases.

Paper shape: vanilla latency trends upward with usage (more occupied
pages per block → more migrations); HotMem stays flat and fast.
"""

from repro.experiments import fig6_usage_sweep as fig6


def test_fig6_usage_sweep(run_once):
    result = run_once(fig6.run, fig6.Fig6Config())
    print()
    print(result.render())
    print(
        f"vanilla 90%/10% latency ratio: {result.vanilla_trend_ratio():.2f}, "
        f"hotmem max/min: {result.hotmem_spread_ratio():.2f}"
    )
    assert result.vanilla_trend_ratio() > 3.0
    assert result.hotmem_spread_ratio() < 1.2
