"""Motivation (Figure 1): host memory stranding across deployment modes.

Four trace-driven VMs share one host node; the table shows how much host
memory each deployment mode keeps committed as load comes and goes.
"""

from repro.experiments import stranding


def test_motivation_stranding(run_once):
    result = run_once(stranding.run)
    print()
    print(result.render())
    over = result.avg_gib["overprovisioned"]
    assert result.avg_gib["hotmem"] < 0.5 * over
    assert result.avg_gib["vanilla"] < 0.5 * over
    # Static provisioning never lets go of anything.
    assert result.tail_gib["overprovisioned"] == result.peak_gib["overprovisioned"]
