"""Ablation A5: all four elasticity interfaces on one reclaim scenario.

Extends the paper's comparison (virtio-mem vs HotMem) with the two
related-work baselines of Section 7: virtio-balloon and ACPI DIMM
hotplug, in both a relaxed and a memory-pressure scenario.
"""

from repro.experiments import baselines_comparison as bc


def test_baselines_comparison(run_once):
    def both():
        return bc.run(), bc.run(bc.BaselinesConfig.pressure())

    relaxed, pressure = run_once(both)
    print()
    print(relaxed.render())
    print()
    print("Under pressure (freed 512MiB, asked 1536MiB, 95% usage):")
    print(pressure.render())
    assert relaxed.speedup_over("virtio-mem") > 5.0
    assert pressure.by_mechanism["balloon"].balloon_retries > 0
    assert pressure.by_mechanism["hotmem"].latency_ms < 100
