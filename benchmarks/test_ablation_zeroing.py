"""Ablation A2: zeroing mode (init_on_alloc / init_on_free / none)."""

from repro.experiments import ablations


def test_ablation_zeroing(run_once):
    result = run_once(ablations.run_zeroing_ablation)
    print()
    print(result.render())
    # HotMem's zero-skip makes it immune to the zeroing mode.
    assert result.values["init_on_free/hotmem/plug"] == result.values[
        "none/hotmem/plug"
    ]
    assert (
        result.values["init_on_free/vanilla/plug"]
        > result.values["none/vanilla/plug"]
    )
