"""Micro-benchmarks of the simulator's own primitives.

Not a paper figure — these track the harness's wall-clock efficiency so
that regressions in the substrate (event loop, allocator, migration)
show up independently of the experiment results.
"""

from repro.mm.manager import GuestMemoryManager
from repro.mm.mm_struct import MmStruct
from repro.sim.engine import Simulator, Timeout
from repro.units import GIB, MIB


def test_event_loop_throughput(benchmark):
    def run_events():
        sim = Simulator()

        def ticker():
            for _ in range(2000):
                yield Timeout(1)

        sim.spawn(ticker())
        sim.run()
        return sim.now

    assert benchmark(run_events) == 2000


def test_allocator_bulk_throughput(benchmark):
    def allocate_one_gib():
        manager = GuestMemoryManager(2 * GIB, 0)
        mm = MmStruct("bench")
        manager.alloc_pages(mm, (1 * GIB) // 4096)
        return mm.total_pages

    assert benchmark(allocate_one_gib) == (1 * GIB) // 4096


def test_migration_throughput(benchmark):
    def migrate_block():
        manager = GuestMemoryManager(512 * MIB, 512 * MIB)
        for index in manager.hotplug_block_indices():
            manager.online_block(index, manager.zone_movable)
        mm = MmStruct("bench")
        manager.alloc_pages(mm, manager.zone_movable.free_pages // 2)
        block = manager.zone_movable.blocks[0]
        return manager.migrate_block_out(block).migrated_pages

    assert benchmark(migrate_block) > 0


def test_unplug_request_end_to_end(benchmark):
    from repro.cluster.provision import Fleet, VmSpec

    def one_unplug():
        sim = Simulator()
        vm = Fleet(sim).provision(VmSpec("bench", region_bytes=GIB)).vm
        vm.request_plug(GIB)
        sim.run()
        process = vm.request_unplug(512 * MIB)
        sim.run()
        return process.value.unplugged_bytes

    assert benchmark(one_unplug) == 512 * MIB
