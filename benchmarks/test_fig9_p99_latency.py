"""Figure 9: P99 invocation latency across the three configurations.

Paper shape: HotMem ≈ vanilla ≈ statically over-provisioned (elasticity
does not penalize tail latency); Bert is slightly affected by its ≈30 ms
plugs.
"""

from repro.experiments import fig9_p99_latency as fig9


def test_fig9_p99_latency(run_once):
    result = run_once(fig9.run, fig9.Fig9Config())
    print()
    print(result.render())
    for fn in result.config.functions:
        assert result.p99[fn]["hotmem"] == __import__("pytest").approx(
            result.p99[fn]["vanilla"], rel=0.15
        )
        assert result.elasticity_overhead(fn, "hotmem") < 1.5
