"""Figure 7: cumulative CPU time of the unplug vCPU during stepped shrink.

Paper shape: vanilla keeps the vCPU busy migrating pages on every step
and the experiment lasts longer; HotMem only slightly uses the vCPU.
"""

from repro.experiments import fig7_cpu_usage as fig7


def test_fig7_cpu_usage(run_once):
    result = run_once(fig7.run, fig7.Fig7Config())
    print()
    print(result.render())
    assert result.cpu_ratio() > 10.0
    assert result.duration_s["vanilla"] > result.duration_s["hotmem"]
