"""Ablation A4: HotMem reclaim throughput vs concurrency factor N."""

from repro.experiments import ablations


def test_ablation_concurrency(run_once):
    result = run_once(ablations.run_concurrency_ablation)
    print()
    print(result.render())
    for row in result.rows():
        assert row[1] > 0  # throughput
        assert row[3] == 0  # oom failures
