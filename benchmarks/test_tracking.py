"""E1: memory tracking under a diurnal load cycle.

Elastic modes keep plugged memory glued to what the live instances need
(tracking ratio ≈ 1.0); static provisioning holds the maximum forever.
"""

from repro.experiments import tracking


def test_tracking(run_once):
    result = run_once(tracking.run)
    print()
    print(result.render())
    assert result.tracking_ratio["hotmem"] < 1.3
    assert result.tracking_ratio["vanilla"] < 1.5
    assert result.tracking_ratio["overprovisioned"] > 3.0
