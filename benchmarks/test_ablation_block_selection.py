"""Ablation A3: unplug block-selection policy × allocator placement."""

from repro.experiments import ablations


def test_ablation_block_selection(run_once):
    result = run_once(ablations.run_selection_ablation)
    print()
    print(result.render())
    # Under scatter interleaving, selection cannot help (HotMem's thesis).
    scatter_gap = (
        result.values["scatter/linear"] / result.values["scatter/emptiest_first"]
    )
    assert 0.75 < scatter_gap < 1.35
