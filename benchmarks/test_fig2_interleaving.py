"""Figure 2, quantified: interleaving after an instance exits.

The paper's concept diagram as a measurement: under scatter allocation
every block holds every instance's pages and nothing becomes free when
one exits; HotMem's partitions keep one owner per block and the exited
partition is entirely free.
"""

from repro.experiments import fig2_interleaving as fig2


def test_fig2_interleaving(run_once):
    result = run_once(fig2.run)
    print()
    print(result.render())
    scatter = result.reports["scatter"]
    hotmem = result.reports["hotmem"]
    assert scatter.fully_free_blocks == 0
    assert scatter.mean_owners_per_block > 3
    assert hotmem.max_owners_per_block == 1
    assert result.migration_pages["hotmem"] == 0
    assert result.migration_pages["scatter"] > 0
