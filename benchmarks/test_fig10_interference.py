"""Figure 10: per-second Cnn latency under HTML scale-down.

Paper shape: vanilla shows latency spikes of >100 % around the shrink
events (page migrations hog the shared vCPU); HotMem shows no impact.
"""

from repro.experiments import fig10_interference as fig10
from repro.metrics.report import render_series


def test_fig10_interference(run_once):
    result = run_once(fig10.run, fig10.Fig10Config())
    print()
    print(result.render())
    print()
    print(
        render_series(
            "Cnn per-second latency (vanilla, every 10s)",
            result.series_rows("vanilla", every=10),
            ["second", "avg_ms"],
        )
    )
    assert result.spike["vanilla"] > 1.5
    assert result.window_mean["vanilla"] > 1.3
    assert result.window_mean["hotmem"] < 1.2
