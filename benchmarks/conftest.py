"""Benchmark-suite configuration.

Every benchmark regenerates one table or figure of the paper and prints
the corresponding rows (run with ``pytest benchmarks/ --benchmark-only -s``
to see them).  The experiments are deterministic simulations, so one
round with one iteration measures the harness's wall-clock cost while
the *simulated* results are exact and asserted qualitatively.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
