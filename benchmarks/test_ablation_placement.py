"""Ablation A1: allocator placement policy vs vanilla unplug cost."""

from repro.experiments import ablations


def test_ablation_placement(run_once):
    result = run_once(ablations.run_placement_ablation)
    print()
    print(result.render())
    assert result.values["sequential"] < result.values["scatter"]
