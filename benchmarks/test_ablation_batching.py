"""Ablation A6: batched unplug (the paper's Section 6.1.1 future work).

Per-block unplug pays fixed offline/remove/madvise costs for every
128 MiB block, so latency grows linearly with the request; offlining a
free partition's contiguous blocks as one operation flattens the curve.
"""

from repro.experiments import ablations


def test_ablation_batching(run_once):
    result = run_once(ablations.run_batching_ablation)
    print()
    print(result.render())
    # Batching wins, and wins more at larger requests.
    assert result.values["1/batched"] < result.values["1/per_block"]
    gain_small = result.values["1/per_block"] / result.values["1/batched"]
    gain_large = result.values["8/per_block"] / result.values["8/batched"]
    assert gain_large > gain_small
