"""Figure 5: average unplug latency vs reclaim size (HotMem vs vanilla).

Paper shape: HotMem is an order of magnitude faster at every size, and
latency grows with the number of 128 MiB blocks released.
"""

from repro.experiments import fig5_unplug_latency as fig5


def test_fig5_unplug_latency(run_once):
    result = run_once(fig5.run, fig5.Fig5Config(trials=2))
    print()
    print(result.render())
    for size in result.config.reclaim_sizes:
        assert result.speedup(size) >= 10.0
