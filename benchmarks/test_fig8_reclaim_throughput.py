"""Figure 8: reclamation throughput under trace-driven scaling.

Paper shape: HotMem reclaims at a large multiple (paper: ≈7×) of vanilla
throughput for every function.
"""

from repro.experiments import fig8_reclaim_throughput as fig8


def test_fig8_reclaim_throughput(run_once):
    result = run_once(fig8.run, fig8.Fig8Config())
    print()
    print(result.render())
    for fn in result.config.functions:
        assert result.speedup(fn) >= 3.0
